//! Shared helpers for the Criterion benches and the paper-report binary.
//!
//! Each bench target regenerates one experiment from DESIGN.md §6
//! (one per table/figure of the paper); `cargo run -p homonym-bench --bin
//! paper_report` prints every table and series in one go, and
//! EXPERIMENTS.md records the outputs next to the paper's claims.

pub mod json;

use std::sync::Arc;

use homonym_classic::Eig;
use homonym_core::exec::{Executor, Sequential};
use homonym_core::{
    bounds, ByzPower, Counting, Deliveries, Domain, IdAssignment, Pid, Protocol, ProtocolFactory,
    Round, SharedEnvelope, Synchrony, SystemConfig,
};
use homonym_delay::{
    AlwaysBounded, DelayCluster, DelayReport, DoublingPacing, EventuallyBounded, FixedPacing,
};
use homonym_psync::{AgreementFactory, BoundedAgreementFactory, Bundle, RestrictedFactory};
use homonym_sim::harness::{run_standard_suite, SuiteParams, SuiteResult};
use homonym_sim::{
    RandomUntilGst, RunReport, ShardReport, ShardSpec, ShardedSimulation, ShotSpec, Simulation,
};
use homonym_sync::TransformedFactory;

/// A `T(EIG)` factory for `ell` identifiers tolerating `t` faults.
pub fn t_eig_factory(ell: usize, t: usize) -> TransformedFactory<Eig<bool>> {
    TransformedFactory::new(Eig::new(ell, t, Domain::binary()), t)
}

/// The Figure 5 factory for `(n, ℓ, t)`.
pub fn fig5_factory(n: usize, ell: usize, t: usize) -> AgreementFactory<bool> {
    AgreementFactory::new(n, ell, t, Domain::binary())
}

/// The Figure 7 factory for `(n, ℓ, t)`.
pub fn fig7_factory(n: usize, ell: usize, t: usize) -> RestrictedFactory<bool> {
    RestrictedFactory::new(n, ell, t, Domain::binary())
}

/// A synchronous configuration.
pub fn sync_cfg(n: usize, ell: usize, t: usize) -> SystemConfig {
    SystemConfig::builder(n, ell, t)
        .build()
        .expect("valid parameters")
}

/// A partially synchronous configuration.
pub fn psync_cfg(n: usize, ell: usize, t: usize) -> SystemConfig {
    SystemConfig::builder(n, ell, t)
        .synchrony(Synchrony::PartiallySynchronous)
        .build()
        .expect("valid parameters")
}

/// A restricted-Byzantine, numerate, partially synchronous configuration.
pub fn restricted_cfg(n: usize, ell: usize, t: usize) -> SystemConfig {
    SystemConfig::builder(n, ell, t)
        .synchrony(Synchrony::PartiallySynchronous)
        .counting(Counting::Numerate)
        .byz_power(ByzPower::Restricted)
        .build()
        .expect("valid parameters")
}

/// One clean (failure-free, unanimous-input) run of `T(EIG)`; returns the
/// report for round/message accounting.
pub fn run_t_eig_clean(n: usize, ell: usize, t: usize) -> RunReport<bool> {
    run_t_eig_clean_with(Sequential, n, ell, t)
}

/// [`run_t_eig_clean`] with the tick fanned across `exec` — the
/// intra-instance parallel path (chunked sends and deliveries over one
/// instance's pid space, byte-identical to sequential).
pub fn run_t_eig_clean_with<E: Executor>(
    exec: E,
    n: usize,
    ell: usize,
    t: usize,
) -> RunReport<bool> {
    let factory = t_eig_factory(ell, t);
    let assignment = IdAssignment::stacked(ell, n).expect("ℓ ≤ n");
    let mut sim = Simulation::builder(sync_cfg(n, ell, t), assignment, vec![true; n])
        .executor(exec)
        .build_with(&factory);
    sim.run(factory.round_bound() + 9)
}

/// One clean run of the Figure 5 protocol with the given stabilization
/// round (messages drop with probability 0.3 before it).
pub fn run_fig5(n: usize, ell: usize, t: usize, gst: u64, seed: u64) -> RunReport<bool> {
    run_fig5_with(Sequential, n, ell, t, gst, seed)
}

/// [`run_fig5`] with the tick fanned across `exec` — drop planning stays
/// on the calling thread (the policy's RNG draw order is observable), so
/// the lossy pre-GST schedule replays identically at any worker count.
pub fn run_fig5_with<E: Executor>(
    exec: E,
    n: usize,
    ell: usize,
    t: usize,
    gst: u64,
    seed: u64,
) -> RunReport<bool> {
    let factory = fig5_factory(n, ell, t);
    let assignment = IdAssignment::stacked(ell, n).expect("ℓ ≤ n");
    let inputs = (0..n).map(|k| k % 2 == 0).collect();
    let mut sim = Simulation::builder(psync_cfg(n, ell, t), assignment, inputs)
        .drops(RandomUntilGst::new(Round::new(gst), 0.3, seed))
        .executor(exec)
        .build_with(&factory);
    sim.run(gst + factory.round_bound() + 24)
}

/// One clean run of the Figure 7 protocol.
pub fn run_fig7(n: usize, ell: usize, t: usize, gst: u64, seed: u64) -> RunReport<bool> {
    let factory = fig7_factory(n, ell, t);
    let assignment = IdAssignment::stacked(ell, n).expect("ℓ ≤ n");
    let inputs = (0..n).map(|k| k % 2 == 0).collect();
    let mut sim = Simulation::builder(restricted_cfg(n, ell, t), assignment, inputs)
        .drops(RandomUntilGst::new(Round::new(gst), 0.3, seed))
        .build_with(&factory);
    sim.run(gst + factory.round_bound() + 24)
}

/// One Figure 5 run on the **known-bound** delay model (delays ≤ `delta`
/// from `calm_tick` on, chaos before) with rounds of `delta` ticks.
pub fn run_fig5_known_bound(
    n: usize,
    ell: usize,
    t: usize,
    delta: u64,
    calm_tick: u64,
    seed: u64,
) -> DelayReport<bool> {
    let factory = fig5_factory(n, ell, t);
    let assignment = IdAssignment::stacked(ell, n).expect("ℓ ≤ n");
    let inputs = (0..n).map(|k| k % 2 == 0).collect();
    let mut cluster = DelayCluster::builder(psync_cfg(n, ell, t), assignment, inputs)
        .model(EventuallyBounded::new(delta, calm_tick, 20 * delta, seed))
        .pacing(FixedPacing::new(delta))
        .build();
    cluster.run(&factory, calm_tick / delta + factory.round_bound() + 24)
}

/// One Figure 5 run on the **unknown-bound** delay model (delays ≤ `delta`
/// always) with guess-and-double pacing that never reads `delta`.
pub fn run_fig5_unknown_bound(
    n: usize,
    ell: usize,
    t: usize,
    delta: u64,
    seed: u64,
) -> DelayReport<bool> {
    let factory = fig5_factory(n, ell, t);
    let assignment = IdAssignment::stacked(ell, n).expect("ℓ ≤ n");
    let inputs = (0..n).map(|k| k % 2 == 0).collect();
    let mut cluster = DelayCluster::builder(psync_cfg(n, ell, t), assignment, inputs)
        .model(AlwaysBounded::new(delta, seed))
        .pacing(DoublingPacing::new(1, 8))
        .build();
    // Doubling reaches `delta` within 8·log2(delta) rounds.
    let catch_up = 8 * (64 - delta.leading_zeros() as u64 + 1);
    cluster.run(&factory, catch_up + factory.round_bound() + 24)
}

/// Every bundle the Figure 5 protocol emits on a clean full-delivery run
/// at `(n, ℓ = n/2 + 2, t = 1)` with split inputs, hand-driven through
/// the shared-handle seam until every process decides.
///
/// The `codec_throughput` bench and the paper report's estimate-vs-exact
/// table both measure these values: a representative mix of
/// init-bearing, echo-heavy, and steady-state bundles rather than a
/// synthetic corpus.
pub fn fig5_wire_bundles(n: usize) -> Vec<Arc<Bundle<bool>>> {
    let ell = n / 2 + 2; // 2ℓ = n + 4 > n + 3t for t = 1
    let t = 1;
    let factory = fig5_factory(n, ell, t);
    let cfg = psync_cfg(n, ell, t);
    let assignment = IdAssignment::stacked(ell, n).expect("ℓ ≤ n");
    let mut procs: Vec<_> = (0..n)
        .map(|i| {
            let pid = Pid::new(i);
            factory.spawn(assignment.id_of(pid), i % 2 == 0)
        })
        .collect();
    let mut deliveries = Deliveries::new(n);
    let mut bundles = Vec::new();
    for r in 0..factory.round_bound() + 24 {
        let round = Round::new(r);
        deliveries.clear();
        for (i, proc_) in procs.iter_mut().enumerate() {
            let src = assignment.id_of(Pid::new(i));
            for (recipients, msg) in proc_.send_shared(round) {
                bundles.push(Arc::clone(&msg));
                for to in recipients.expand(&assignment) {
                    deliveries.push(to, SharedEnvelope::shared(src, Arc::clone(&msg)));
                }
            }
        }
        for (i, proc_) in procs.iter_mut().enumerate() {
            let inbox = deliveries.take_inbox(Pid::new(i), cfg.counting);
            proc_.receive(round, &inbox);
        }
        if procs.iter().all(|p| p.decision().is_some()) {
            break;
        }
    }
    assert!(
        procs.iter().all(|p| p.decision().is_some()),
        "fig5 n={n} must decide"
    );
    bundles
}

/// Exact wire/memory profile of one hand-driven, full-delivery Figure 5
/// run: frame bits per round, bundle emissions, and per-round process
/// state samples, driven until every process decides and then `tail`
/// further steady-state rounds.
///
/// The `bounded_throughput` bench and the paper report's
/// faithful-vs-bounded table both consume this: the faithful stack
/// rebroadcasts its whole echo history every round (bits/round grows
/// without bound), the bounded stack only its watermark window
/// (bits/round and state flat), and the profile makes both curves
/// visible in one schema.
pub struct WireProfile {
    /// Round by which every process had decided.
    pub decided_round: u64,
    /// Total rounds driven (`decided_round + 1 + tail`).
    pub rounds: u64,
    /// Broadcast emissions (one bundle each, fanned out to all `n`).
    pub bundles_sent: u64,
    /// Per-recipient deliveries (`bundles_sent × n`).
    pub messages_sent: u64,
    /// Exact frame bits summed over every emission (counted once per
    /// broadcast — the `Arc` fan-out shares the frame with every
    /// recipient, exactly as the sharded engine's `wire_bits` accounting
    /// does).
    pub total_bits: u64,
    /// Exact frame bits per round, in round order.
    pub per_round_bits: Vec<u64>,
    /// Sum of [`Protocol::state_bits`] across processes after the last
    /// round.
    pub state_bits: u64,
    /// Largest per-round state sample over the run.
    pub peak_state_bits: u64,
}

/// [`WireProfile`] of the faithful Figure 5 stack at
/// `(n, ℓ = n/2 + 2, t = 1)` with split inputs.
pub fn fig5_wire_profile(n: usize, tail: u64) -> WireProfile {
    let ell = n / 2 + 2;
    let factory = fig5_factory(n, ell, 1);
    let bound = factory.round_bound();
    profile_run(&factory, n, ell, bound + 64, tail)
}

/// [`WireProfile`] of the bounded-storage Figure 5 stack
/// ([`BoundedAgreementFactory`]) at the same parameters.
pub fn fig5_bounded_wire_profile(n: usize, tail: u64) -> WireProfile {
    let ell = n / 2 + 2;
    let factory = BoundedAgreementFactory::new(n, ell, 1, Domain::binary());
    let bound = factory.round_bound();
    profile_run(&factory, n, ell, bound + 64, tail)
}

fn profile_run<F>(factory: &F, n: usize, ell: usize, max_rounds: u64, tail: u64) -> WireProfile
where
    F: ProtocolFactory,
    F::P: Protocol<Value = bool>,
    <F::P as Protocol>::Msg: homonym_core::codec::WireEncode,
{
    let cfg = psync_cfg(n, ell, 1);
    let assignment = IdAssignment::stacked(ell, n).expect("ℓ ≤ n");
    let mut procs: Vec<F::P> = (0..n)
        .map(|i| factory.spawn(assignment.id_of(Pid::new(i)), i % 2 == 0))
        .collect();
    let mut deliveries = Deliveries::new(n);
    let mut decided_round = None;
    let mut per_round_bits = Vec::new();
    let mut bundles_sent = 0u64;
    let mut total_bits = 0u64;
    let (mut state_bits, mut peak_state_bits) = (0u64, 0u64);
    let mut r = 0u64;
    while r < max_rounds {
        let round = Round::new(r);
        deliveries.clear();
        let mut round_bits = 0u64;
        for (i, proc_) in procs.iter_mut().enumerate() {
            let src = assignment.id_of(Pid::new(i));
            for (recipients, msg) in proc_.send_shared(round) {
                bundles_sent += 1;
                round_bits += homonym_core::codec::frame_bits(&*msg);
                for to in recipients.expand(&assignment) {
                    deliveries.push(to, SharedEnvelope::shared(src, Arc::clone(&msg)));
                }
            }
        }
        total_bits += round_bits;
        per_round_bits.push(round_bits);
        for (i, proc_) in procs.iter_mut().enumerate() {
            let inbox = deliveries.take_inbox(Pid::new(i), cfg.counting);
            proc_.receive(round, &inbox);
        }
        state_bits = procs.iter().map(|p| p.state_bits()).sum();
        peak_state_bits = peak_state_bits.max(state_bits);
        if decided_round.is_none() && procs.iter().all(|p| p.decision().is_some()) {
            decided_round = Some(r);
        }
        r += 1;
        if let Some(d) = decided_round {
            if r >= d + 1 + tail {
                break;
            }
        }
    }
    let decided_round = decided_round.expect("profiled run must decide");
    WireProfile {
        decided_round,
        rounds: r,
        bundles_sent,
        messages_sent: bundles_sent * n as u64,
        total_bits,
        per_round_bits,
        state_bits,
        peak_state_bits,
    }
}

/// K shards of n-process synchronous `T(EIG)` agreement, each running
/// `shots` back-to-back instances (alternating input patterns) through
/// one shared delivery plane, ticks stepped on the given executor.
/// Exact wire-bit measurement is on when `measure_bits` is set.
pub fn run_sharded_t_eig_with<E: Executor>(
    exec: E,
    k: usize,
    n: usize,
    ell: usize,
    t: usize,
    shots: usize,
    measure_bits: bool,
) -> Vec<ShardReport<bool>> {
    let horizon = t_eig_factory(ell, t).round_bound() + 9;
    let mut sharded = ShardedSimulation::with_executor(exec).measure_bits(measure_bits);
    for s in 0..k {
        let mut spec = ShardSpec::new(
            sync_cfg(n, ell, t),
            IdAssignment::stacked(ell, n).expect("ℓ ≤ n"),
        );
        for q in 0..shots {
            let inputs = (0..n).map(|i| (i + q + s) % 2 == 0).collect();
            spec = spec.shot(ShotSpec::new(inputs).horizon(horizon));
        }
        sharded.add_shard(spec, t_eig_factory(ell, t));
    }
    sharded.run(shots as u64 * horizon + 8)
}

/// [`run_sharded_t_eig_with`] on the default sequential executor.
pub fn run_sharded_t_eig(
    k: usize,
    n: usize,
    ell: usize,
    t: usize,
    shots: usize,
    measure_bits: bool,
) -> Vec<ShardReport<bool>> {
    run_sharded_t_eig_with(Sequential, k, n, ell, t, shots, measure_bits)
}

/// K shards of the Figure 5 partially synchronous protocol (no drops),
/// `shots` instances per shard, over one shared delivery plane, ticks
/// stepped on the given executor.
pub fn run_sharded_fig5_with<E: Executor>(
    exec: E,
    k: usize,
    n: usize,
    ell: usize,
    t: usize,
    shots: usize,
    measure_bits: bool,
) -> Vec<ShardReport<bool>> {
    let horizon = fig5_factory(n, ell, t).round_bound() + 24;
    let mut sharded = ShardedSimulation::with_executor(exec).measure_bits(measure_bits);
    for s in 0..k {
        let mut spec = ShardSpec::new(
            psync_cfg(n, ell, t),
            IdAssignment::stacked(ell, n).expect("ℓ ≤ n"),
        );
        for q in 0..shots {
            let inputs = (0..n).map(|i| (i + q + s) % 2 == 0).collect();
            spec = spec.shot(ShotSpec::new(inputs).horizon(horizon));
        }
        sharded.add_shard(spec, fig5_factory(n, ell, t));
    }
    sharded.run(shots as u64 * horizon + 8)
}

/// [`run_sharded_fig5_with`] on the default sequential executor.
pub fn run_sharded_fig5(
    k: usize,
    n: usize,
    ell: usize,
    t: usize,
    shots: usize,
    measure_bits: bool,
) -> Vec<ShardReport<bool>> {
    run_sharded_fig5_with(Sequential, k, n, ell, t, shots, measure_bits)
}

/// One instrumented sharded run rendered as the machine-readable series
/// entry shared by `shard_throughput`, `parallel_shards`, and the
/// `paper_report` binary — one schema, one code path, so the committed
/// `BENCH_*.json` artifacts cannot drift apart.
///
/// Asserts that every shard decided every shot (the throughput number is
/// meaningless otherwise).
pub fn measure_sharded(
    protocol: &str,
    k: usize,
    n: usize,
    ell: usize,
    t: usize,
    shots: usize,
    run: impl FnOnce() -> Vec<ShardReport<bool>>,
) -> json::Value {
    use json::Value;
    let start = std::time::Instant::now();
    let reports = run();
    let time_ns = start.elapsed().as_nanos() as i64;
    let decided = decided_shots_total(&reports);
    assert_eq!(
        decided,
        (k * shots) as u64,
        "{protocol} k={k} n={n}: every shard must decide every shot"
    );
    let messages: u64 = reports.iter().map(ShardReport::messages_sent).sum();
    let rounds: u64 = reports.iter().map(ShardReport::rounds).sum();
    let bits: u64 = reports
        .iter()
        .map(|r| r.bits_sent().expect("bits measured"))
        .sum();
    Value::obj([
        ("protocol", Value::str(protocol)),
        ("k", Value::Int(k as i64)),
        ("n", Value::Int(n as i64)),
        ("ell", Value::Int(ell as i64)),
        ("t", Value::Int(t as i64)),
        ("shots_per_shard", Value::Int(shots as i64)),
        ("time_ns", Value::Int(time_ns)),
        ("decisions", Value::Int(decided as i64)),
        (
            "decisions_per_sec",
            Value::Num(decided as f64 / (time_ns as f64 / 1e9)),
        ),
        ("rounds", Value::Int(rounds as i64)),
        ("messages_sent", Value::Int(messages as i64)),
        ("bits_sent", Value::Int(bits as i64)),
        (
            "messages_per_decision",
            Value::Num(messages as f64 / decided as f64),
        ),
        (
            "bits_per_decision",
            Value::Num(bits as f64 / decided as f64),
        ),
    ])
}

/// One instrumented **solo** run rendered in the same series shape as
/// [`measure_sharded`]: a single agreement instance, timed end to end,
/// with the delivery-fabric throughput (`messages_per_sec`) as the rate —
/// the metric `bench_gate` gates and normalizes by. Used by the
/// `parallel_shards` intra-instance series, where the executor fans one
/// instance's tick across worker chunks.
///
/// Asserts the instance decided (the timing is meaningless otherwise).
pub fn measure_solo(
    protocol: &str,
    n: usize,
    ell: usize,
    t: usize,
    run: impl FnOnce() -> RunReport<bool>,
) -> json::Value {
    use json::Value;
    let start = std::time::Instant::now();
    let report = run();
    let time_ns = start.elapsed().as_nanos() as i64;
    assert!(
        report.all_decided_round.is_some(),
        "{protocol} n={n}: the instance must decide"
    );
    Value::obj([
        ("protocol", Value::str(protocol)),
        ("n", Value::Int(n as i64)),
        ("ell", Value::Int(ell as i64)),
        ("t", Value::Int(t as i64)),
        ("time_ns", Value::Int(time_ns)),
        ("rounds", Value::Int(report.rounds as i64)),
        ("messages_sent", Value::Int(report.messages_sent as i64)),
        (
            "messages_per_sec",
            Value::Num(report.messages_sent as f64 / (time_ns as f64 / 1e9)),
        ),
    ])
}

/// Agreement instances completed (all correct processes decided) across a
/// sharded run's reports.
pub fn decided_shots_total(reports: &[ShardReport<bool>]) -> u64 {
    reports.iter().map(|r| r.decided_shots() as u64).sum()
}

/// Runs the standard adversary suite for a synchronous `T(EIG)` cell.
pub fn suite_t_eig(n: usize, ell: usize, t: usize, seed: u64) -> SuiteResult<bool> {
    let cfg = sync_cfg(n, ell, t);
    let factory = t_eig_factory(ell, t);
    let assignment = IdAssignment::stacked(ell, n).expect("ℓ ≤ n");
    let domain = Domain::binary();
    run_standard_suite(
        &factory,
        &SuiteParams {
            cfg,
            assignment: &assignment,
            domain: &domain,
            horizon: factory.round_bound() + 9,
            gst: 0,
            seed,
        },
    )
}

/// Runs the standard adversary suite for a partially synchronous Figure 5
/// cell.
pub fn suite_fig5(n: usize, ell: usize, t: usize, gst: u64, seed: u64) -> SuiteResult<bool> {
    let cfg = psync_cfg(n, ell, t);
    let factory = fig5_factory(n, ell, t);
    let assignment = IdAssignment::stacked(ell, n).expect("ℓ ≤ n");
    let domain = Domain::binary();
    run_standard_suite(
        &factory,
        &SuiteParams {
            cfg,
            assignment: &assignment,
            domain: &domain,
            horizon: gst + factory.round_bound() + 24,
            gst,
            seed,
        },
    )
}

/// Runs the standard adversary suite for a restricted Figure 7 cell.
pub fn suite_fig7(n: usize, ell: usize, t: usize, gst: u64, seed: u64) -> SuiteResult<bool> {
    let cfg = restricted_cfg(n, ell, t);
    let factory = fig7_factory(n, ell, t);
    let assignment = IdAssignment::stacked(ell, n).expect("ℓ ≤ n");
    let domain = Domain::binary();
    run_standard_suite(
        &factory,
        &SuiteParams {
            cfg,
            assignment: &assignment,
            domain: &domain,
            horizon: gst + factory.round_bound() + 24,
            gst,
            seed,
        },
    )
}

/// The JSON form of a report's all-decided round: the round index, or
/// `null` if some correct process never decided. One helper so every
/// `BENCH_*.json` emitter agrees on the schema.
pub fn decided_round_value<V>(report: &RunReport<V>) -> json::Value {
    report
        .all_decided_round
        .map_or(json::Value::Null, |r| json::Value::Int(r.index() as i64))
}

/// Formats a solvability cell for the report: predicted vs empirical.
pub fn cell_line(cfg: &SystemConfig, empirical: &str) -> String {
    format!(
        "n={:<2} ell={:<2} t={} | predicted {:<10} | empirical {}",
        cfg.n,
        cfg.ell,
        cfg.t,
        if bounds::solvable(cfg) {
            "solvable"
        } else {
            "unsolvable"
        },
        empirical
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_runs_decide() {
        assert!(run_t_eig_clean(5, 4, 1).verdict.all_hold());
        assert!(run_fig5(4, 4, 1, 4, 1).verdict.all_hold());
        assert!(run_fig7(4, 2, 1, 4, 1).verdict.all_hold());
    }

    #[test]
    fn sharded_runs_decide_every_shot() {
        let sync = run_sharded_t_eig(3, 6, 4, 1, 2, true);
        assert_eq!(decided_shots_total(&sync), 6);
        assert!(sync.iter().all(|r| r.bits_sent().unwrap() > 0));
        let psync = run_sharded_fig5(2, 6, 5, 1, 2, false);
        assert_eq!(decided_shots_total(&psync), 4);
    }

    #[test]
    fn cell_line_mentions_prediction() {
        let line = cell_line(&sync_cfg(4, 4, 1), "ok");
        assert!(line.contains("solvable"));
    }
}
