//! E4 — the Figure 1 ring construction: cost of building and running the
//! 2(n − t)-process counterexample system against `T(EIG)`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use homonym_bench::t_eig_factory;
use homonym_core::Domain;
use homonym_lowerbounds::fig1;
use homonym_sync::TransformedFactory;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig1_ring");
    group.sample_size(20);
    for (n, t) in [(4, 1), (6, 1), (7, 2)] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("n{n}_t{t}")),
            &(n, t),
            |b, &(n, t)| {
                let algo = homonym_classic::Eig::new_unchecked(3 * t, t, Domain::binary());
                let factory = TransformedFactory::new(algo, t);
                let sys = fig1::build(n, t);
                b.iter(|| {
                    let report = fig1::run(&factory, &sys, factory.round_bound() + 9);
                    assert!(report.contradiction_exhibited());
                    report.rounds
                })
            },
        );
    }
    // A solvable-side control: the same ring budget spent on a legal run.
    group.bench_function("control_t_eig_n7_ell4_t1", |b| {
        let _ = t_eig_factory(4, 1);
        b.iter(|| homonym_bench::run_t_eig_clean(7, 4, 1).rounds)
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
