//! Crash-recovery overhead — what rejoining durably actually costs, at
//! n ∈ {32, 128}.
//!
//! Two series, written to `BENCH_recovery.json`:
//!
//! * `psync_fig5_journal` — journal-only recovery (no snapshots) of the
//!   Figure 5 agreement, crashed at 25% / 50% / 75% of the golden run's
//!   decision round: the journal grows with the crash epoch, so
//!   `journal_bytes`, `replay_ns` (decode + fresh spawn + replay), and
//!   `rounds_to_catch_up` (rounds the rejoiner still runs before it
//!   decides) trace the replay-cost curve against the crash epoch.
//! * `classic_eig_snapshot` — snapshotted recovery of classic EIG
//!   (`UniqueRunner` implements the snapshot seam): the journal carries a
//!   state snapshot every round, so replay restores the snapshot and
//!   re-runs almost nothing. `snapshot_bits` is codec-exact and
//!   deterministic — the regression gate pins it (`--direction lower`).
//!
//! Every sample is a paired run: the golden (uninterrupted) execution
//! fixes the decision round, then the subject run crashes the victim at
//! the epoch boundary and durably recovers it in place; decisions must
//! match the golden run exactly (asserted). Pass `--quick` (CI does) to
//! trim to n = 32; the shared point is deterministic against the
//! committed full-mode snapshot.

use std::time::Instant;

use criterion::{BenchmarkId, Criterion};
use homonym_bench::json::{write_bench_json, Value};
use homonym_bench::{fig5_factory, psync_cfg, sync_cfg};
use homonym_classic::{Eig, UniqueRunner};
use homonym_core::codec::{WireDecode, WireEncode};
use homonym_core::{
    Domain, FnFactory, IdAssignment, Pid, Protocol, ProtocolFactory, RecoveryMode, SystemConfig,
};
use homonym_sim::Simulation;

const NS_FULL: [usize; 2] = [32, 128];
const NS_QUICK: [usize; 1] = [32];
const EPOCHS: [u64; 3] = [25, 50, 75];

/// One paired-run measurement.
struct Sample {
    n: usize,
    ell: usize,
    epoch_pct: u64,
    crash_round: u64,
    decision_round: u64,
    snapshot_bits: u64,
    journal_bytes: u64,
    replay_ns: u64,
    rounds_to_catch_up: u64,
}

/// Runs golden + crashed executions of one configuration and measures
/// the durable recovery at `epoch_pct`% of the golden decision round.
fn measure<F, P>(
    factory: &F,
    cfg: SystemConfig,
    assignment: IdAssignment,
    inputs: Vec<P::Value>,
    snapshot_every: u64,
    epoch_pct: u64,
) -> Sample
where
    P: Protocol + Send + 'static,
    P::Msg: WireEncode + WireDecode,
    P::Value: PartialEq + std::fmt::Debug,
    F: ProtocolFactory<P = P>,
{
    let victim = Pid::new(0);

    // Golden: fix the decision round and the expected decisions.
    let mut golden =
        Simulation::builder(cfg, assignment.clone(), inputs.clone()).build_with(factory);
    let horizon = 4 * (golden.cfg().n as u64) + 64;
    let report = golden.run(horizon);
    let decision_round = report
        .all_decided_round
        .expect("golden run decides")
        .index();
    let crash_round = decision_round * epoch_pct / 100;

    // Subject: journal everything, crash the victim at the epoch
    // boundary, recover it durably in place, and finish the run.
    let mut sim = Simulation::builder(cfg, assignment, inputs)
        .durable(snapshot_every)
        .build_with(factory);
    while sim.round().index() < crash_round {
        sim.step();
    }
    let snapshot_bits = sim
        .processes()
        .find(|(pid, _)| *pid == victim)
        .map(|(_, p)| p.snapshot_bits())
        .unwrap_or(0);
    let journal_bytes: u64 = sim
        .journal(victim)
        .expect("durable journal")
        .recover()
        .records
        .iter()
        .map(|r| r.len() as u64)
        .sum();
    let start = Instant::now();
    sim.crash(victim).expect("victim is live");
    sim.recover_with(factory, victim, RecoveryMode::Durable)
        .expect("durable recovery");
    let replay_ns = start.elapsed().as_nanos() as u64;
    while sim.round().index() < horizon && !sim.all_decided() {
        sim.step();
    }
    assert_eq!(
        sim.decisions(),
        golden.decisions(),
        "recovery must be unobservable"
    );
    let victim_decided = sim.decisions()[&victim].1.index();
    Sample {
        n: cfg.n,
        ell: cfg.ell,
        epoch_pct,
        crash_round,
        decision_round,
        snapshot_bits,
        journal_bytes,
        replay_ns,
        rounds_to_catch_up: victim_decided.saturating_sub(crash_round),
    }
}

/// Journal-only recovery of the Figure 5 agreement (2ℓ > n + 3t).
fn psync_sample(n: usize, epoch_pct: u64) -> Sample {
    let ell = n / 2 + 2;
    let factory = fig5_factory(n, ell, 1);
    let inputs = (0..n).map(|k| k % 2 == 0).collect();
    measure(
        &factory,
        psync_cfg(n, ell, 1),
        IdAssignment::stacked(ell, n).expect("ℓ ≤ n"),
        inputs,
        0,
        epoch_pct,
    )
}

/// Snapshotted recovery of classic EIG (unique identifiers, per-round
/// snapshots): replay restores the snapshot instead of the history.
fn classic_sample(n: usize, epoch_pct: u64) -> Sample {
    let domain = Domain::binary();
    let factory = FnFactory::new(move |id, input| {
        UniqueRunner::new(Eig::new(n, 1, domain.clone()), id, input)
    });
    let inputs = (0..n).map(|k| k % 3 == 0).collect();
    measure(
        &factory,
        sync_cfg(n, n, 1),
        IdAssignment::unique(n),
        inputs,
        1,
        epoch_pct,
    )
}

fn render(protocol: &str, s: &Sample) -> Value {
    Value::obj([
        ("protocol", Value::str(protocol)),
        ("n", Value::Int(s.n as i64)),
        ("ell", Value::Int(s.ell as i64)),
        ("t", Value::Int(1)),
        ("epoch_pct", Value::Int(s.epoch_pct as i64)),
        ("crash_round", Value::Int(s.crash_round as i64)),
        ("decision_round", Value::Int(s.decision_round as i64)),
        ("snapshot_bits", Value::Int(s.snapshot_bits as i64)),
        ("journal_bytes", Value::Int(s.journal_bytes as i64)),
        ("replay_ns", Value::Int(s.replay_ns as i64)),
        (
            "rounds_to_catch_up",
            Value::Int(s.rounds_to_catch_up as i64),
        ),
    ])
}

fn bench(c: &mut Criterion, ns: &[usize]) {
    let mut group = c.benchmark_group("recovery_overhead");
    group.sample_size(10);
    for &n in ns {
        group.bench_with_input(
            BenchmarkId::new("psync_fig5_journal", format!("n{n}")),
            &n,
            |b, &n| b.iter(|| psync_sample(n, 50).replay_ns),
        );
    }
    group.finish();
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let ns: &[usize] = if quick { &NS_QUICK } else { &NS_FULL };

    let mut c = Criterion::default();
    bench(&mut c, ns);

    let mut series = Vec::new();
    for &n in ns {
        for &epoch in &EPOCHS {
            series.push(render("psync_fig5_journal", &psync_sample(n, epoch)));
        }
        // One snapshotted point per n, crashed at the decision boundary:
        // classic EIG decides in t + 1 rounds, so the epochs collapse —
        // the point of this series is the deterministic snapshot size
        // and the near-zero replay (restore, re-run nothing).
        series.push(render("classic_eig_snapshot", &classic_sample(n, 100)));
    }
    let doc = Value::obj([
        ("bench", Value::str("recovery_overhead")),
        ("mode", Value::str(if quick { "quick" } else { "full" })),
        ("series", Value::Arr(series)),
    ]);
    match write_bench_json("recovery", &doc) {
        Ok(path) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("failed to write BENCH_recovery.json: {e}"),
    }
}
