//! E3 — Table 1, restricted-Byzantine row: wall time of Figure 7 runs at
//! `ℓ = t + 1`, the minimum the paper proves sufficient for numerate
//! processes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use homonym_bench::run_fig7;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("table1_restricted");
    group.sample_size(10);
    for (n, ell, t, gst) in [(4, 2, 1, 0), (4, 2, 1, 8), (7, 3, 2, 8), (10, 2, 1, 8)] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("n{n}_ell{ell}_t{t}_gst{gst}")),
            &(n, ell, t, gst),
            |b, &(n, ell, t, gst)| {
                b.iter(|| {
                    let report = run_fig7(n, ell, t, gst, 5);
                    assert!(report.verdict.all_hold());
                    report.rounds
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
