//! E8 — Figure 5 end-to-end: decision latency and message cost versus the
//! stabilization time and the identifier budget.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use homonym_bench::run_fig5;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("psync_agreement");
    group.sample_size(10);
    // GST sweep at fixed (n, ℓ, t).
    for gst in [0u64, 8, 16, 24] {
        group.bench_with_input(BenchmarkId::new("gst_sweep", gst), &gst, |b, &gst| {
            b.iter(|| {
                let report = run_fig5(4, 4, 1, gst, 3);
                assert!(report.verdict.all_hold());
                report.rounds
            })
        });
    }
    // Identifier sweep at fixed n = 7, t = 1 (ℓ must exceed (n+3t)/2 = 5).
    for ell in [6usize, 7] {
        group.bench_with_input(BenchmarkId::new("ell_sweep_n7", ell), &ell, |b, &ell| {
            b.iter(|| {
                let report = run_fig5(7, ell, 1, 8, 3);
                assert!(report.verdict.all_hold());
                report.rounds
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
