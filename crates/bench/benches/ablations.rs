//! Ablation benches: the cost of the design novelties DESIGN.md calls out.
//!
//! * T(A)'s deciding rounds add one wire message per process per phase;
//!   this bench compares clean-run wall time with and without them.
//! * Figure 5's vote superround adds one authenticated broadcast per
//!   process per phase; same comparison. (What the novelties *buy* —
//!   correctness under attack — is asserted in `tests/ablations.rs` and
//!   the psync unit tests, not benchable.)

use criterion::{criterion_group, criterion_main, Criterion};
use homonym_bench::{psync_cfg, sync_cfg};
use homonym_classic::Eig;
use homonym_core::{Domain, IdAssignment};
use homonym_psync::AgreementFactory;
use homonym_sim::Simulation;
use homonym_sync::TransformedFactory;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablations");
    group.sample_size(20);

    let run_transformer = |factory: &TransformedFactory<Eig<bool>>| {
        let mut sim = Simulation::builder(
            sync_cfg(6, 4, 1),
            IdAssignment::stacked(4, 6).unwrap(),
            vec![true; 6],
        )
        .build_with(factory);
        let report = sim.run(factory.round_bound() + 9);
        assert!(report.verdict.all_hold());
        report.messages_sent
    };
    group.bench_function("transformer_with_decide_relay", |b| {
        let factory = TransformedFactory::new(Eig::new(4, 1, Domain::binary()), 1);
        b.iter(|| run_transformer(&factory))
    });
    group.bench_function("transformer_without_decide_relay", |b| {
        let factory =
            TransformedFactory::ablated_without_decide_relay(Eig::new(4, 1, Domain::binary()), 1);
        b.iter(|| run_transformer(&factory))
    });

    let run_fig5 = |factory: &AgreementFactory<bool>| {
        let mut sim =
            Simulation::builder(psync_cfg(4, 4, 1), IdAssignment::unique(4), vec![true; 4])
                .build_with(factory);
        let report = sim.run(factory.round_bound() + 24);
        assert!(report.verdict.all_hold());
        report.messages_sent
    };
    group.bench_function("fig5_with_votes", |b| {
        let factory = AgreementFactory::new(4, 4, 1, Domain::binary());
        b.iter(|| run_fig5(&factory))
    });
    group.bench_function("fig5_without_votes", |b| {
        let factory = AgreementFactory::ablated_without_votes(4, 4, 1, Domain::binary());
        b.iter(|| run_fig5(&factory))
    });

    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
