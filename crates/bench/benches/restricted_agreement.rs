//! E9 — Figures 6/7 versus Figure 5: the restricted-Byzantine protocol
//! needs only t + 1 identifiers where Figure 5 needs > (n + 3t)/2, at
//! comparable per-round cost.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use homonym_bench::{run_fig5, run_fig7};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("restricted_agreement");
    group.sample_size(10);
    // Same n and t; minimum legal ℓ for each protocol.
    for (n, t) in [(4usize, 1usize), (7, 2)] {
        let ell5 = (n + 3 * t) / 2 + 1; // Figure 5 minimum
        let ell7 = t + 1; // Figure 7 minimum
        group.bench_with_input(
            BenchmarkId::new("fig5_min_ell", format!("n{n}_t{t}_ell{ell5}")),
            &(n, ell5, t),
            |b, &(n, ell, t)| {
                b.iter(|| {
                    let report = run_fig5(n, ell, t, 8, 9);
                    assert!(report.verdict.all_hold());
                    report.rounds
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("fig7_min_ell", format!("n{n}_t{t}_ell{ell7}")),
            &(n, ell7, t),
            |b, &(n, ell, t)| {
                b.iter(|| {
                    let report = run_fig7(n, ell, t, 8, 9);
                    assert!(report.verdict.all_hold());
                    report.rounds
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
