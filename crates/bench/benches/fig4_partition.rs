//! E5 — the Figure 4 partition construction: cost of recording α and β and
//! replaying them into the split-brain execution γ.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use homonym_bench::{fig5_factory, psync_cfg};
use homonym_lowerbounds::fig4;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig4_partition");
    group.sample_size(10);
    for (n, ell, t) in [(5, 4, 1), (7, 5, 1), (8, 5, 1)] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("n{n}_ell{ell}_t{t}")),
            &(n, ell, t),
            |b, &(n, ell, t)| {
                let factory = fig5_factory(n, ell, t);
                let cfg = psync_cfg(n, ell, t);
                b.iter(|| {
                    let outcome = fig4::run(&factory, cfg, 8 * 14);
                    assert!(outcome.violation_exhibited());
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
