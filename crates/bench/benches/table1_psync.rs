//! E2 — Table 1, partially synchronous column: wall time of Figure 5 runs
//! on solvable cells, across stabilization times.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use homonym_bench::run_fig5;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("table1_psync");
    group.sample_size(10);
    for (n, ell, t, gst) in [(4, 4, 1, 0), (4, 4, 1, 8), (5, 5, 1, 8), (7, 6, 1, 8)] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("n{n}_ell{ell}_t{t}_gst{gst}")),
            &(n, ell, t, gst),
            |b, &(n, ell, t, gst)| {
                b.iter(|| {
                    let report = run_fig5(n, ell, t, gst, 7);
                    assert!(report.verdict.all_hold());
                    report.rounds
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
