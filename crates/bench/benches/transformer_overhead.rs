//! E6 — Figures 2/3: the cost of the T(A) simulation. Three homonym rounds
//! simulate one round of A, so T(EIG) should take ≈ 3× the rounds of raw
//! EIG (plus the deciding-round slack), independent of n.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use homonym_bench::{run_t_eig_clean, sync_cfg, t_eig_factory};
use homonym_classic::{Eig, UniqueRunner};
use homonym_core::{Domain, FnFactory, IdAssignment};
use homonym_sim::Simulation;

fn run_raw_eig(ell: usize, t: usize) -> u64 {
    let domain = Domain::binary();
    let factory = FnFactory::new(move |id, input| {
        UniqueRunner::new(Eig::new(ell, t, domain.clone()), id, input)
    });
    let mut sim = Simulation::builder(
        sync_cfg(ell, ell, t),
        IdAssignment::unique(ell),
        vec![true; ell],
    )
    .build_with(&factory);
    let report = sim.run(16);
    assert!(report.verdict.all_hold());
    report.rounds
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("transformer_overhead");
    group.sample_size(20);
    for (ell, t) in [(4, 1), (7, 2)] {
        group.bench_with_input(
            BenchmarkId::new("raw_eig", format!("ell{ell}_t{t}")),
            &(ell, t),
            |b, &(ell, t)| b.iter(|| run_raw_eig(ell, t)),
        );
        for n in [ell, ell + 3] {
            group.bench_with_input(
                BenchmarkId::new("t_eig", format!("n{n}_ell{ell}_t{t}")),
                &(n, ell, t),
                |b, &(n, ell, t)| {
                    let _ = t_eig_factory(ell, t);
                    b.iter(|| {
                        let report = run_t_eig_clean(n, ell, t);
                        assert!(report.verdict.all_hold());
                        report.rounds
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
