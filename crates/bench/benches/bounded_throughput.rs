//! Bounded-state broadcast — wire and memory cost of the bounded
//! Figure 5 stack against the faithful one, at n ∈ {32, 64, 128}.
//!
//! The faithful protocol rebroadcasts its whole echo history every round,
//! so its bits/round and per-process state grow linearly for as long as
//! the run lasts. The bounded variant rebroadcasts only the watermark
//! window, so both curves go *flat* once the horizon starts pruning. Each
//! run is driven until every process decides plus a fixed steady-state
//! tail, long enough for the bounded plateau to be visible
//! ([`fig5_wire_profile`] / [`fig5_bounded_wire_profile`]).
//!
//! Besides the criterion timing loop, the bench writes machine-readable
//! results to `BENCH_bounded.json` with three series — `sync_t_eig` (the
//! machine-speed reference the gate normalizes against), `psync_fig5`
//! (faithful), and `psync_fig5_bounded` — including exact `bits_sent`,
//! `bits_per_decision`, the mid/end tail bits-per-round samples that show
//! the plateau, and the `state_bits`/`peak_state_bits` memory samples.
//! Pass `--quick` (CI does) to trim the series to n = 32 with a shorter
//! tail.

use std::time::Instant;

use criterion::{BenchmarkId, Criterion};
use homonym_bench::json::{write_bench_json, Value};
use homonym_bench::{fig5_bounded_wire_profile, fig5_wire_profile, run_t_eig_clean, WireProfile};

const NS_FULL: [usize; 3] = [32, 64, 128];
const NS_QUICK: [usize; 1] = [32];
/// Steady-state rounds driven past the all-decided round. The bounded
/// window is 16 superrounds (32 rounds), so the tail holds well over a
/// full window of plateau on both sampling points. Quick mode trims the
/// `n` series but keeps the same tail: the runs are deterministic, so
/// the shared n = 32 point is bit-identical between the committed
/// full-mode snapshot and a CI quick run, and the gate can be tight.
const TAIL: u64 = 128;

fn bench(c: &mut Criterion, ns: &[usize]) {
    let mut group = c.benchmark_group("bounded_throughput");
    group.sample_size(10);
    for &n in ns {
        group.bench_with_input(
            BenchmarkId::new("psync_fig5", format!("n{n}")),
            &n,
            |b, &n| b.iter(|| fig5_wire_profile(n, 32).total_bits),
        );
        group.bench_with_input(
            BenchmarkId::new("psync_fig5_bounded", format!("n{n}")),
            &n,
            |b, &n| b.iter(|| fig5_bounded_wire_profile(n, 32).total_bits),
        );
    }
    group.finish();
}

/// One instrumented reference run (the throughput shape the gate
/// normalizes machine speed with).
fn measure_reference(n: usize) -> Value {
    let start = Instant::now();
    let report = run_t_eig_clean(n, 4, 1);
    let time_ns = start.elapsed().as_nanos() as i64;
    assert!(report.verdict.all_hold(), "sync_t_eig n={n} must decide");
    Value::obj([
        ("protocol", Value::str("sync_t_eig")),
        ("n", Value::Int(n as i64)),
        ("ell", Value::Int(4)),
        ("t", Value::Int(1)),
        ("time_ns", Value::Int(time_ns)),
        ("messages_sent", Value::Int(report.messages_sent as i64)),
        (
            "messages_per_sec",
            Value::Num(report.messages_sent as f64 / (time_ns as f64 / 1e9)),
        ),
    ])
}

/// One instrumented profile run rendered as a series entry. The tail
/// samples land at `decided + tail/2` and at the final round — for the
/// bounded stack the two match once the horizon prunes (flat bits per
/// round); for the faithful stack the end sample keeps climbing.
fn measure_profile(
    protocol: &str,
    n: usize,
    tail: u64,
    run: impl FnOnce() -> WireProfile,
) -> Value {
    let start = Instant::now();
    let profile = run();
    let time_ns = start.elapsed().as_nanos() as i64;
    let mid = profile.per_round_bits[(profile.decided_round + tail / 2) as usize];
    let end = *profile.per_round_bits.last().expect("profiled rounds");
    Value::obj([
        ("protocol", Value::str(protocol)),
        ("n", Value::Int(n as i64)),
        ("ell", Value::Int((n / 2 + 2) as i64)),
        ("t", Value::Int(1)),
        ("time_ns", Value::Int(time_ns)),
        ("rounds", Value::Int(profile.rounds as i64)),
        ("decided_round", Value::Int(profile.decided_round as i64)),
        ("tail_rounds", Value::Int(tail as i64)),
        ("bundles_sent", Value::Int(profile.bundles_sent as i64)),
        ("messages_sent", Value::Int(profile.messages_sent as i64)),
        (
            "messages_per_sec",
            Value::Num(profile.messages_sent as f64 / (time_ns as f64 / 1e9)),
        ),
        ("bits_sent", Value::Int(profile.total_bits as i64)),
        (
            "bits_per_decision",
            Value::Num(profile.total_bits as f64 / n as f64),
        ),
        ("bits_per_round_mid", Value::Int(mid as i64)),
        ("bits_per_round_end", Value::Int(end as i64)),
        ("state_bits", Value::Int(profile.state_bits as i64)),
        (
            "peak_state_bits",
            Value::Int(profile.peak_state_bits as i64),
        ),
    ])
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let ns: &[usize] = if quick { &NS_QUICK } else { &NS_FULL };
    let tail = TAIL;

    let mut c = Criterion::default();
    bench(&mut c, ns);

    let mut series = Vec::new();
    for &n in ns {
        series.push(measure_reference(n));
    }
    for &n in ns {
        series.push(measure_profile("psync_fig5", n, tail, || {
            fig5_wire_profile(n, tail)
        }));
        series.push(measure_profile("psync_fig5_bounded", n, tail, || {
            fig5_bounded_wire_profile(n, tail)
        }));
    }
    let doc = Value::obj([
        ("bench", Value::str("bounded_throughput")),
        ("mode", Value::str(if quick { "quick" } else { "full" })),
        ("series", Value::Arr(series)),
    ]);
    match write_bench_json("bounded", &doc) {
        Ok(path) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("failed to write BENCH_bounded.json: {e}"),
    }
}
