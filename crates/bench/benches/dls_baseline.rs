//! E15 — the price of homonymy: the Figure 5 protocol at `ℓ = n` *is* the
//! classical Dwork–Lynch–Stockmeyer algorithm (unique identifiers,
//! `n − t` quorums). Sweeping `ℓ` down from `n` toward the
//! `2ℓ > n + 3t` wall measures what shrinking the identifier budget costs
//! in latency — the complexity dimension the paper's conclusion leaves
//! open.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use homonym_bench::run_fig5;
use homonym_core::Domain;
use homonym_psync::classic_dls_factory;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("dls_baseline");
    group.sample_size(10);

    // The classical baseline: ℓ = n = 8, t = 1 — quorums are the familiar
    // n − t; confirm the factory alias agrees with the generic one.
    let classic = classic_dls_factory(8, 1, Domain::binary());
    assert_eq!(
        classic.round_bound(),
        homonym_bench::fig5_factory(8, 8, 1).round_bound()
    );

    group.bench_function("classic_dls_n8", |b| {
        b.iter(|| {
            let report = run_fig5(8, 8, 1, 8, 3);
            assert!(report.verdict.all_hold());
            report.rounds
        })
    });

    // Shrinking identifier budgets at n = 8, t = 1: the wall is
    // 2ℓ > 11, i.e. ℓ ≥ 6.
    for ell in [7usize, 6] {
        group.bench_with_input(BenchmarkId::new("homonym_ell", ell), &ell, |b, &ell| {
            b.iter(|| {
                let report = run_fig5(8, ell, 1, 8, 3);
                assert!(report.verdict.all_hold());
                report.rounds
            })
        });
    }

    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
