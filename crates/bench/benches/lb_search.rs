//! E10 — bounded adversary exploration: cost of the Lemma 21 multivalence
//! demonstration and of the exhaustive strategy sweep on tiny systems.

use criterion::{criterion_group, criterion_main, Criterion};
use homonym_bench::fig7_factory;
use homonym_core::{IdAssignment, Pid};
use homonym_lowerbounds::search;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("lb_search");
    group.sample_size(10);
    group.bench_function("multivalence_n4_ell1_t1", |b| {
        let factory = fig7_factory(4, 1, 1);
        let assignment = IdAssignment::anonymous(4);
        b.iter(|| {
            let report = search::multivalence_demo(
                &factory,
                &assignment,
                &[false, true, true, false],
                Pid::new(3),
                &[false, true],
                8 * 5,
            );
            assert!(report.multivalent());
        })
    });
    group.bench_function("exhaustive_n4_ell2_t1_depth8", |b| {
        let factory = fig7_factory(4, 2, 1);
        let assignment = IdAssignment::round_robin(2, 4).unwrap();
        b.iter(|| {
            search::exhaustive_search(
                &factory,
                &assignment,
                &[false, true, false, true],
                Pid::new(3),
                8,
                800,
            )
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
