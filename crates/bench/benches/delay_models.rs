//! E14 — the Section 2 model-equivalence claim: Figure 5 on the basic
//! lossy-round model versus the two delay-based DLS models (known bound
//! holding eventually; unknown bound holding always).
//!
//! The series of interest is decision latency (in rounds) as the timing
//! assumption degrades — all three substrates decide, and the delay
//! substrates pay only the simulated-drop prefix.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use homonym_bench::{run_fig5, run_fig5_known_bound, run_fig5_unknown_bound};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("delay_models");
    group.sample_size(10);

    // Baseline: the basic lossy-round model at matched stabilization.
    for gst in [0u64, 16] {
        group.bench_with_input(
            BenchmarkId::new("basic_rounds_gst", gst),
            &gst,
            |b, &gst| {
                b.iter(|| {
                    let report = run_fig5(4, 4, 1, gst, 3);
                    assert!(report.verdict.all_hold());
                    report.rounds
                })
            },
        );
    }

    // Known-bound model: chaos until the calm tick, then delays ≤ Δ = 2.
    for calm in [0u64, 32] {
        group.bench_with_input(
            BenchmarkId::new("known_bound_calm", calm),
            &calm,
            |b, &calm| {
                b.iter(|| {
                    let report = run_fig5_known_bound(4, 4, 1, 2, calm, 3);
                    assert!(report.verdict.all_hold());
                    report.rounds
                })
            },
        );
    }

    // Unknown-bound model: delays ≤ Δ from the start, doubling pacing.
    for delta in [2u64, 6] {
        group.bench_with_input(
            BenchmarkId::new("unknown_bound_delta", delta),
            &delta,
            |b, &delta| {
                b.iter(|| {
                    let report = run_fig5_unknown_bound(4, 4, 1, delta, 3);
                    assert!(report.verdict.all_hold());
                    report.rounds
                })
            },
        );
    }

    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
