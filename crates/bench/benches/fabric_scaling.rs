//! Fabric scaling — wall time of whole agreement runs as `n` climbs into
//! the hundreds, on the `Arc`-shared delivery fabric.
//!
//! Two series:
//!
//! * **sync** — `T(EIG)` at `(ℓ = 4, t = 1)` under the stacked assignment
//!   for n ∈ {32, 64, 128, 256}: the fabric's headline (every round is a
//!   full n × n broadcast; the seed engine deep-cloned each payload per
//!   recipient, the fabric wraps it once);
//! * **psync** — the Figure 5 protocol at `ℓ = n/2 + 2`, `t = 1` for
//!   n ∈ {32, 64, 128}: bundle-heavy traffic, dominated by protocol-side
//!   processing rather than delivery, included so fabric regressions and
//!   protocol regressions are distinguishable.
//!
//! Besides the criterion timing loop, the bench writes machine-readable
//! results to `BENCH_fabric.json` (one instrumented run per
//! configuration), which CI uploads so the perf trajectory is recorded
//! per PR. Pass `--quick` (CI does) to trim the psync series to
//! n ∈ {32, 64}.

use std::time::Instant;

use criterion::{BenchmarkId, Criterion};
use homonym_bench::json::{write_bench_json, Value};
use homonym_bench::{decided_round_value, run_fig5, run_t_eig_clean};
use homonym_sim::RunReport;

const SYNC_NS: [usize; 4] = [32, 64, 128, 256];
const PSYNC_NS_FULL: [usize; 3] = [32, 64, 128];
const PSYNC_NS_QUICK: [usize; 2] = [32, 64];

fn fig5_ell(n: usize) -> usize {
    n / 2 + 2 // 2ℓ = n + 4 > n + 3t for t = 1
}

fn bench(c: &mut Criterion, psync_ns: &[usize]) {
    let mut group = c.benchmark_group("fabric_scaling");
    group.sample_size(10);
    for n in SYNC_NS {
        group.bench_with_input(
            BenchmarkId::new("sync_t_eig", format!("n{n}")),
            &n,
            |b, &n| {
                b.iter(|| {
                    let report = run_t_eig_clean(n, 4, 1);
                    assert!(report.verdict.all_hold());
                    report.messages_sent
                })
            },
        );
    }
    for &n in psync_ns {
        group.bench_with_input(
            BenchmarkId::new("psync_fig5", format!("n{n}")),
            &n,
            |b, &n| {
                b.iter(|| {
                    let report = run_fig5(n, fig5_ell(n), 1, 0, 3);
                    assert!(report.verdict.all_hold());
                    report.messages_sent
                })
            },
        );
    }
    group.finish();
}

/// One instrumented run for the JSON artifact, with per-round timing
/// (the bundle-path work is per-round, so `ns_per_round` is the number
/// the hot-path optimizations move).
fn measure(protocol: &str, n: usize, ell: usize, run: impl FnOnce() -> RunReport<bool>) -> Value {
    let start = Instant::now();
    let report = run();
    let time_ns = start.elapsed().as_nanos() as i64;
    assert!(report.verdict.all_hold(), "{protocol} n={n} must decide");
    Value::obj([
        ("protocol", Value::str(protocol)),
        ("n", Value::Int(n as i64)),
        ("ell", Value::Int(ell as i64)),
        ("t", Value::Int(1)),
        ("time_ns", Value::Int(time_ns)),
        ("rounds", Value::Int(report.rounds as i64)),
        (
            "ns_per_round",
            Value::Num(time_ns as f64 / report.rounds.max(1) as f64),
        ),
        ("decided_round", decided_round_value(&report)),
        ("messages_sent", Value::Int(report.messages_sent as i64)),
        (
            "messages_per_sec",
            Value::Num(report.messages_sent as f64 / (time_ns as f64 / 1e9)),
        ),
    ])
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let psync_ns: &[usize] = if quick {
        &PSYNC_NS_QUICK
    } else {
        &PSYNC_NS_FULL
    };

    let mut c = Criterion::default();
    bench(&mut c, psync_ns);

    let mut series = Vec::new();
    for n in SYNC_NS {
        series.push(measure("sync_t_eig", n, 4, || run_t_eig_clean(n, 4, 1)));
    }
    for &n in psync_ns {
        let ell = fig5_ell(n);
        series.push(measure("psync_fig5", n, ell, || run_fig5(n, ell, 1, 0, 3)));
    }
    let doc = Value::obj([
        ("bench", Value::str("fabric_scaling")),
        ("mode", Value::str(if quick { "quick" } else { "full" })),
        ("series", Value::Arr(series)),
    ]);
    match write_bench_json("fabric", &doc) {
        Ok(path) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("failed to write BENCH_fabric.json: {e}"),
    }
}
