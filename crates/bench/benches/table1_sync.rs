//! E1 — Table 1, synchronous column: wall time of `T(EIG)` runs at and
//! around the `ℓ = 3t + 1` boundary (the solvability *shape* itself is
//! asserted in `tests/table1_sync_boundary.rs` and printed by
//! `paper_report`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use homonym_bench::run_t_eig_clean;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("table1_sync");
    group.sample_size(20);
    for (n, ell, t) in [(4, 4, 1), (7, 4, 1), (10, 4, 1), (8, 7, 2)] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("n{n}_ell{ell}_t{t}")),
            &(n, ell, t),
            |b, &(n, ell, t)| {
                b.iter(|| {
                    let report = run_t_eig_clean(n, ell, t);
                    assert!(report.verdict.all_hold());
                    report.rounds
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
