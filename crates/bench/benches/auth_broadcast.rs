//! E7 — Proposition 6: the authenticated echo broadcast. Cost of a
//! broadcast-accept cycle as ℓ grows, and of the forever-echo
//! retransmission the relay property demands.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use homonym_core::{Id, Round};
use homonym_psync::{EchoBroadcast, EchoItem};

/// Runs one broadcast through a fully synchronous ℓ-process network of
/// bare broadcast layers and returns rounds until every process accepted.
fn broadcast_cycle(ell: usize, t: usize, extra_rounds: u64) -> u64 {
    let mut procs: Vec<EchoBroadcast<u64>> = (0..ell).map(|_| EchoBroadcast::new(ell, t)).collect();
    procs[0].broadcast(42);
    let mut accepted = vec![false; ell];
    let mut first_all = 0;
    for r in 0..(4 + extra_rounds) {
        let round = Round::new(r);
        let mut inits: Vec<(Id, u64)> = Vec::new();
        let mut echoes: Vec<(Id, EchoItem<u64>)> = Vec::new();
        for (k, p) in procs.iter_mut().enumerate() {
            let (i, e) = p.to_send(round);
            for m in i {
                inits.push((Id::from_index(k), m));
            }
            for item in e {
                echoes.push((Id::from_index(k), item));
            }
        }
        let inits_ref: Vec<(Id, &u64)> = inits.iter().map(|(i, m)| (*i, m)).collect();
        let echo_ref: Vec<(Id, &EchoItem<u64>)> = echoes.iter().map(|(i, e)| (*i, e)).collect();
        for (k, p) in procs.iter_mut().enumerate() {
            if !p.observe(round, &inits_ref, &echo_ref).is_empty() {
                accepted[k] = true;
            }
        }
        if accepted.iter().all(|&a| a) && first_all == 0 {
            first_all = r + 1;
        }
    }
    assert!(first_all > 0, "broadcast must be accepted by everyone");
    first_all
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("auth_broadcast");
    group.sample_size(30);
    for (ell, t) in [(4, 1), (7, 2), (10, 3), (13, 4)] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("ell{ell}_t{t}")),
            &(ell, t),
            |b, &(ell, t)| b.iter(|| broadcast_cycle(ell, t, 0)),
        );
    }
    // The echo-forever tail: additional rounds after acceptance keep
    // costing retransmissions.
    group.bench_function("echo_tail_ell7_t2_plus16", |b| {
        b.iter(|| broadcast_cycle(7, 2, 16))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
