//! Codec throughput — encode/decode MB/s of the zero-copy wire codec on
//! real Figure 5 bundles at n ∈ {32, 128}.
//!
//! The corpus is every bundle a clean Figure 5 run emits
//! ([`fig5_wire_bundles`]), so the numbers reflect the wire values the
//! engines actually frame: init-bearing early bundles, echo-heavy
//! mid-run bundles, and small steady-state bundles. Each sample is
//! round-tripped once up front to assert `decode(encode(b)) == b` before
//! any timing runs.
//!
//! Besides the criterion timing loop, the bench writes machine-readable
//! results to `BENCH_codec.json`, which CI uploads alongside the other
//! snapshots. Pass `--quick` (CI does) to trim the series to n = 32.

use std::time::Instant;

use criterion::{BenchmarkId, Criterion};
use homonym_bench::fig5_wire_bundles;
use homonym_bench::json::{write_bench_json, Value};
use homonym_core::codec::{decode_frame, encode_frame};
use homonym_psync::Bundle;

const NS_FULL: [usize; 2] = [32, 128];
const NS_QUICK: [usize; 1] = [32];

/// Encodes every bundle of the corpus, returning the frames.
fn encode_all(bundles: &[std::sync::Arc<Bundle<bool>>]) -> Vec<Vec<u8>> {
    bundles.iter().map(|b| encode_frame(&**b)).collect()
}

/// Decodes every frame of the corpus, returning the bundle count (a
/// cheap value the optimizer cannot elide the decodes behind).
fn decode_all(frames: &[Vec<u8>]) -> usize {
    frames
        .iter()
        .map(|f| {
            let b: Bundle<bool> = decode_frame(f).expect("own frames must decode");
            std::hint::black_box(&b);
        })
        .count()
}

fn bench(c: &mut Criterion, ns: &[usize]) {
    let mut group = c.benchmark_group("codec_throughput");
    group.sample_size(10);
    for &n in ns {
        let bundles = fig5_wire_bundles(n);
        let frames = encode_all(&bundles);
        group.bench_with_input(
            BenchmarkId::new("encode_bundle", format!("n{n}")),
            &n,
            |b, _| b.iter(|| encode_all(&bundles).len()),
        );
        group.bench_with_input(
            BenchmarkId::new("decode_bundle", format!("n{n}")),
            &n,
            |b, _| b.iter(|| decode_all(&frames)),
        );
    }
    group.finish();
}

/// One instrumented pass over the corpus for the JSON artifact.
fn measure(n: usize) -> Value {
    let bundles = fig5_wire_bundles(n);

    // Round-trip identity on the whole corpus before timing anything.
    for b in &bundles {
        let back: Bundle<bool> = decode_frame(&encode_frame(&**b)).expect("frame must decode");
        assert_eq!(back, **b, "decode(encode(b)) == b at n={n}");
    }

    let start = Instant::now();
    let frames = encode_all(&bundles);
    let encode_ns = start.elapsed().as_nanos() as i64;
    let bytes: u64 = frames.iter().map(|f| f.len() as u64).sum();

    let start = Instant::now();
    let decoded = decode_all(&frames);
    let decode_ns = start.elapsed().as_nanos() as i64;
    assert_eq!(decoded, bundles.len());

    let mb = bytes as f64 / (1024.0 * 1024.0);
    Value::obj([
        ("n", Value::Int(n as i64)),
        ("bundles", Value::Int(bundles.len() as i64)),
        ("bytes", Value::Int(bytes as i64)),
        (
            "bytes_per_bundle",
            Value::Num(bytes as f64 / bundles.len().max(1) as f64),
        ),
        ("encode_ns", Value::Int(encode_ns)),
        ("decode_ns", Value::Int(decode_ns)),
        (
            "encode_mb_per_sec",
            Value::Num(mb / (encode_ns as f64 / 1e9)),
        ),
        (
            "decode_mb_per_sec",
            Value::Num(mb / (decode_ns as f64 / 1e9)),
        ),
    ])
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let ns: &[usize] = if quick { &NS_QUICK } else { &NS_FULL };

    let mut c = Criterion::default();
    bench(&mut c, ns);

    let series = ns.iter().map(|&n| measure(n)).collect();
    let doc = Value::obj([
        ("bench", Value::str("codec_throughput")),
        ("mode", Value::str(if quick { "quick" } else { "full" })),
        ("series", Value::Arr(series)),
    ]);
    match write_bench_json("codec", &doc) {
        Ok(path) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("failed to write BENCH_codec.json: {e}"),
    }
}
