//! Shard throughput — decisions/sec of the sharded multi-shot scheduler
//! as the shard count K and the shard size n climb, over one shared
//! delivery plane.
//!
//! Two series:
//!
//! * **sync** — K ∈ {1, 4, 16, 64} shards of n ∈ {8, 32} synchronous
//!   `T(EIG)` agreement at `(ℓ = 4, t = 1)`, 4 shots per shard: the
//!   multi-shot pipeline's headline (every tick is K interleaved n × n
//!   broadcasts, each payload wrapped once);
//! * **psync** — K ∈ {1, 4, 16} shards of the Figure 5 protocol at
//!   n = 16, `ℓ = 10`, 2 shots per shard: bundle-heavy traffic, so
//!   protocol-side regressions stay distinguishable from fabric ones.
//!
//! Besides the criterion timing loop, the bench writes machine-readable
//! results to `BENCH_shards.json` (one instrumented run per
//! configuration, wire-bit estimates on — the arXiv:2311.08060 per-
//! instance cost series), which CI uploads alongside `BENCH_fabric.json`.
//! Pass `--quick` (CI does) to cap K at 16 and skip n = 32 on the sync
//! series.

use criterion::{BenchmarkId, Criterion};
use homonym_bench::json::{write_bench_json, Value};
use homonym_bench::{decided_shots_total, measure_sharded, run_sharded_fig5, run_sharded_t_eig};

const SYNC_KS: [usize; 4] = [1, 4, 16, 64];
const SYNC_KS_QUICK: [usize; 3] = [1, 4, 16];
const SYNC_NS: [usize; 2] = [8, 32];
const SYNC_NS_QUICK: [usize; 1] = [8];
const SYNC_SHOTS: usize = 4;

const PSYNC_KS: [usize; 3] = [1, 4, 16];
const PSYNC_KS_QUICK: [usize; 2] = [1, 4];
const PSYNC_N: usize = 16;
const PSYNC_ELL: usize = 10; // 2ℓ = 20 > n + 3t = 19
const PSYNC_SHOTS: usize = 2;

fn bench(c: &mut Criterion, quick: bool) {
    let sync_ks: &[usize] = if quick { &SYNC_KS_QUICK } else { &SYNC_KS };
    let sync_ns: &[usize] = if quick { &SYNC_NS_QUICK } else { &SYNC_NS };
    let mut group = c.benchmark_group("shard_throughput");
    group.sample_size(10);
    for &n in sync_ns {
        for &k in sync_ks {
            group.bench_with_input(
                BenchmarkId::new(format!("sync_t_eig_n{n}"), format!("k{k}")),
                &k,
                |b, &k| {
                    b.iter(|| {
                        let reports = run_sharded_t_eig(k, n, 4, 1, SYNC_SHOTS, false);
                        let decided = decided_shots_total(&reports);
                        assert_eq!(decided, (k * SYNC_SHOTS) as u64);
                        decided
                    })
                },
            );
        }
    }
    for &k in if quick {
        &PSYNC_KS_QUICK[..]
    } else {
        &PSYNC_KS[..]
    } {
        group.bench_with_input(
            BenchmarkId::new("psync_fig5_n16", format!("k{k}")),
            &k,
            |b, &k| {
                b.iter(|| {
                    let reports = run_sharded_fig5(k, PSYNC_N, PSYNC_ELL, 1, PSYNC_SHOTS, false);
                    let decided = decided_shots_total(&reports);
                    assert_eq!(decided, (k * PSYNC_SHOTS) as u64);
                    decided
                })
            },
        );
    }
    group.finish();
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let mut c = Criterion::default();
    bench(&mut c, quick);

    let sync_ks: &[usize] = if quick { &SYNC_KS_QUICK } else { &SYNC_KS };
    let sync_ns: &[usize] = if quick { &SYNC_NS_QUICK } else { &SYNC_NS };
    let psync_ks: &[usize] = if quick { &PSYNC_KS_QUICK } else { &PSYNC_KS };

    let mut series = Vec::new();
    for &n in sync_ns {
        for &k in sync_ks {
            series.push(measure_sharded(
                "sync_t_eig",
                k,
                n,
                4,
                1,
                SYNC_SHOTS,
                || run_sharded_t_eig(k, n, 4, 1, SYNC_SHOTS, true),
            ));
        }
    }
    for &k in psync_ks {
        series.push(measure_sharded(
            "psync_fig5",
            k,
            PSYNC_N,
            PSYNC_ELL,
            1,
            PSYNC_SHOTS,
            || run_sharded_fig5(k, PSYNC_N, PSYNC_ELL, 1, PSYNC_SHOTS, true),
        ));
    }
    let doc = Value::obj([
        ("bench", Value::str("shard_throughput")),
        ("mode", Value::str(if quick { "quick" } else { "full" })),
        ("series", Value::Arr(series)),
    ]);
    match write_bench_json("shards", &doc) {
        Ok(path) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("failed to write BENCH_shards.json: {e}"),
    }
}
