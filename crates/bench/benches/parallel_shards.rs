//! Parallel tick executor — aggregate decisions/sec of the sharded
//! scheduler as the worker count climbs, at fixed K = 64 shards of n = 8
//! synchronous `T(EIG)` agreement (4 shots per shard, the
//! `shard_throughput` headline configuration).
//!
//! Series: the [`Sequential`] baseline, then [`Pool`] executors at
//! 1/2/4/8 workers. Each tick fans the 64 live shards across the pool's
//! scoped workers, every worker writing its shards' disjoint
//! `Deliveries` slot ranges; results are byte-identical to sequential at
//! any worker count (pinned by `tests/shard_isolation.rs` and the
//! `fabric_golden` digests), so this bench measures pure scheduling
//! overhead/speedup.
//!
//! Besides the criterion timing loop, the bench writes machine-readable
//! results to `BENCH_parallel.json` (best-of-3 instrumented runs per
//! executor, wire-bit estimates on, the same series schema as
//! `BENCH_shards.json`, each entry annotated with its worker count and
//! speedup over the one-worker pool). The file also records
//! `available_parallelism`: on a single-core host the sweep *cannot*
//! show speedup — the artifact documents the hardware so downstream
//! readers interpret the curve correctly. Pass `--quick` (CI does) to
//! cap K at 16 and sweep workers {1, 4} only.

use criterion::{BenchmarkId, Criterion};
use homonym_bench::json::{write_bench_json, Value};
use homonym_bench::{decided_shots_total, measure_sharded, run_sharded_t_eig_with};
use homonym_core::exec::{Executor, Pool, Sequential};

const K: usize = 64;
const K_QUICK: usize = 16;
const N: usize = 8;
const ELL: usize = 4;
const T: usize = 1;
const SHOTS: usize = 4;
const WORKERS: [usize; 4] = [1, 2, 4, 8];
const WORKERS_QUICK: [usize; 2] = [1, 4];

fn bench(c: &mut Criterion, quick: bool) {
    let k = if quick { K_QUICK } else { K };
    let workers: &[usize] = if quick { &WORKERS_QUICK } else { &WORKERS };
    let mut group = c.benchmark_group("parallel_shards");
    group.sample_size(10);
    group.bench_function(BenchmarkId::new(format!("sync_t_eig_k{k}"), "seq"), |b| {
        b.iter(|| {
            let reports = run_sharded_t_eig_with(Sequential, k, N, ELL, T, SHOTS, false);
            let decided = decided_shots_total(&reports);
            assert_eq!(decided, (k * SHOTS) as u64);
            decided
        })
    });
    for &w in workers {
        group.bench_with_input(
            BenchmarkId::new(format!("sync_t_eig_k{k}"), format!("w{w}")),
            &w,
            |b, &w| {
                b.iter(|| {
                    let reports = run_sharded_t_eig_with(Pool::new(w), k, N, ELL, T, SHOTS, false);
                    let decided = decided_shots_total(&reports);
                    assert_eq!(decided, (k * SHOTS) as u64);
                    decided
                })
            },
        );
    }
    group.finish();
}

/// Best-of-`reps` instrumented run for the JSON artifact: spawn-heavy
/// executors are noisy on loaded machines, and the minimum is the
/// scheduling-overhead signal.
fn measure_executor<E: Executor + Clone>(
    label: &str,
    workers: usize,
    exec: E,
    k: usize,
    reps: usize,
) -> (Value, f64) {
    let mut best: Option<(Value, f64)> = None;
    for _ in 0..reps {
        let entry = measure_sharded("sync_t_eig", k, N, ELL, T, SHOTS, || {
            run_sharded_t_eig_with(exec.clone(), k, N, ELL, T, SHOTS, true)
        });
        let rate = entry
            .get("decisions_per_sec")
            .and_then(Value::as_f64)
            .expect("rate recorded");
        let better = match &best {
            None => true,
            Some((_, best_rate)) => rate > *best_rate,
        };
        if better {
            best = Some((entry, rate));
        }
    }
    let (entry, rate) = best.expect("at least one rep");
    let entry = entry.with([
        ("executor", Value::str(label)),
        ("workers", Value::Int(workers as i64)),
    ]);
    (entry, rate)
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let mut c = Criterion::default();
    bench(&mut c, quick);

    let k = if quick { K_QUICK } else { K };
    let workers: &[usize] = if quick { &WORKERS_QUICK } else { &WORKERS };
    let reps = if quick { 2 } else { 3 };

    let mut series = Vec::new();
    let (seq_entry, _) = measure_executor("sequential", 1, Sequential, k, reps);
    series.push(seq_entry);
    let mut w1_rate = None;
    for &w in workers {
        let (entry, rate) = measure_executor("pool", w, Pool::new(w), k, reps);
        if w == 1 {
            w1_rate = Some(rate);
        }
        let entry = match w1_rate {
            Some(base) if base > 0.0 => {
                entry.with([("speedup_vs_workers1", Value::Num(rate / base))])
            }
            _ => entry,
        };
        series.push(entry);
    }

    let cores = std::thread::available_parallelism().map_or(0, |p| p.get());
    let doc = Value::obj([
        ("bench", Value::str("parallel_shards")),
        ("mode", Value::str(if quick { "quick" } else { "full" })),
        ("available_parallelism", Value::Int(cores as i64)),
        ("series", Value::Arr(series)),
    ]);
    match write_bench_json("parallel", &doc) {
        Ok(path) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("failed to write BENCH_parallel.json: {e}"),
    }
}
