//! Parallel tick executor — two fan-out axes, one worker sweep.
//!
//! **Across instances:** aggregate decisions/sec of the sharded scheduler
//! at K = 64 shards of n = 8 synchronous `T(EIG)` agreement (4 shots per
//! shard, the `shard_throughput` headline configuration). Each tick fans
//! the live shards across the pool's scoped workers.
//!
//! **Within one instance:** a single large agreement instance — solo
//! `T(EIG)` at n ∈ {64, 128, 256} and solo partially synchronous Figure 5
//! at n = 128 — with the tick's send and deliver/receive phases chunked
//! over disjoint contiguous pid ranges of that one instance. Route
//! planning (the drop policy's RNG) stays on the calling thread, so the
//! fan-out is unobservable: traces are byte-identical to sequential at
//! any worker count (pinned by `tests/solo_pool_equivalence.rs` and the
//! `fabric_golden` worker sweeps), and the bench measures pure
//! chunking overhead/speedup.
//!
//! Series: the [`Sequential`] baseline, then [`Pool`] executors at
//! 1/2/4/8 workers. Besides the criterion timing loop, the bench writes
//! machine-readable results to `BENCH_parallel.json` (best-of-3
//! instrumented runs per point, the same series schema as
//! `BENCH_shards.json`, each entry annotated with its worker count and
//! speedup over the one-worker pool). The file also records
//! `available_parallelism`: on a single-core host the sweep *cannot* show
//! speedup, so the worker-scaling summary is skipped with a logged reason
//! (and `bench_gate --metric speedup_vs_workers1` skips the same way) —
//! the artifact documents the hardware so downstream readers interpret
//! the curve correctly. Pass `--quick` (CI does) to cap K at 16, trim the
//! solo sizes, and sweep workers {1, 4} only.

use criterion::{BenchmarkId, Criterion};
use homonym_bench::json::{write_bench_json, Value};
use homonym_bench::{
    decided_shots_total, measure_sharded, measure_solo, run_fig5_with, run_sharded_t_eig_with,
    run_t_eig_clean_with,
};
use homonym_core::exec::{Executor, Pool, Sequential};

const K: usize = 64;
const K_QUICK: usize = 16;
const N: usize = 8;
const ELL: usize = 4;
const T: usize = 1;
const SHOTS: usize = 4;
const WORKERS: [usize; 4] = [1, 2, 4, 8];
const WORKERS_QUICK: [usize; 2] = [1, 4];

/// Intra-instance solo `T(EIG)` sizes (synchronous, ℓ = 4, t = 1).
const SOLO_T_EIG_NS: [usize; 3] = [64, 128, 256];
const SOLO_T_EIG_NS_QUICK: [usize; 1] = [64];

/// Intra-instance solo Figure 5 cell: 2ℓ > n + 3t with t = 1.
const SOLO_FIG5: (usize, usize) = (128, 66);
const SOLO_FIG5_QUICK: (usize, usize) = (32, 18);
const SOLO_FIG5_GST: u64 = 4;
const SOLO_FIG5_SEED: u64 = 42;

fn bench(c: &mut Criterion, quick: bool) {
    let k = if quick { K_QUICK } else { K };
    let workers: &[usize] = if quick { &WORKERS_QUICK } else { &WORKERS };
    let mut group = c.benchmark_group("parallel_shards");
    group.sample_size(10);
    group.bench_function(BenchmarkId::new(format!("sync_t_eig_k{k}"), "seq"), |b| {
        b.iter(|| {
            let reports = run_sharded_t_eig_with(Sequential, k, N, ELL, T, SHOTS, false);
            let decided = decided_shots_total(&reports);
            assert_eq!(decided, (k * SHOTS) as u64);
            decided
        })
    });
    for &w in workers {
        group.bench_with_input(
            BenchmarkId::new(format!("sync_t_eig_k{k}"), format!("w{w}")),
            &w,
            |b, &w| {
                b.iter(|| {
                    let reports = run_sharded_t_eig_with(Pool::new(w), k, N, ELL, T, SHOTS, false);
                    let decided = decided_shots_total(&reports);
                    assert_eq!(decided, (k * SHOTS) as u64);
                    decided
                })
            },
        );
    }
    // Intra-instance: ONE instance, chunked across the pool. Criterion
    // times the smallest solo size; the JSON series sweeps all of them.
    let solo_n = if quick {
        SOLO_T_EIG_NS_QUICK[0]
    } else {
        SOLO_T_EIG_NS[0]
    };
    group.bench_function(
        BenchmarkId::new(format!("solo_t_eig_n{solo_n}"), "seq"),
        |b| b.iter(|| run_t_eig_clean_with(Sequential, solo_n, ELL, T).rounds),
    );
    for &w in workers {
        group.bench_with_input(
            BenchmarkId::new(format!("solo_t_eig_n{solo_n}"), format!("w{w}")),
            &w,
            |b, &w| b.iter(|| run_t_eig_clean_with(Pool::new(w), solo_n, ELL, T).rounds),
        );
    }
    group.finish();
}

/// Best-of-`reps` instrumented run for the JSON artifact: spawn-heavy
/// executors are noisy on loaded machines, and the minimum is the
/// scheduling-overhead signal.
fn measure_executor<E: Executor + Clone>(
    label: &str,
    workers: usize,
    exec: E,
    k: usize,
    reps: usize,
) -> (Value, f64) {
    best_of(reps, || {
        let entry = measure_sharded("sync_t_eig", k, N, ELL, T, SHOTS, || {
            run_sharded_t_eig_with(exec.clone(), k, N, ELL, T, SHOTS, true)
        });
        let rate = entry
            .get("decisions_per_sec")
            .and_then(Value::as_f64)
            .expect("rate recorded");
        (entry, rate)
    })
    .map_entry(label, workers)
}

/// Best-of-`reps` instrumented **solo** run: one instance, tick fanned
/// across the executor inside `run`, rated by delivery-fabric
/// throughput. `cell` is the series cell: `(protocol, n, ell, t)`.
fn measure_solo_executor(
    label: &str,
    workers: usize,
    reps: usize,
    cell: (&str, usize, usize, usize),
    run: impl Fn() -> homonym_sim::RunReport<bool>,
) -> (Value, f64) {
    let (protocol, n, ell, t) = cell;
    best_of(reps, || {
        let entry = measure_solo(protocol, n, ell, t, &run);
        let rate = entry
            .get("messages_per_sec")
            .and_then(Value::as_f64)
            .expect("rate recorded");
        (entry, rate)
    })
    .map_entry(label, workers)
}

/// Keeps the fastest of `reps` `(entry, rate)` measurements.
fn best_of(reps: usize, mut measure: impl FnMut() -> (Value, f64)) -> Best {
    let mut best: Option<(Value, f64)> = None;
    for _ in 0..reps {
        let (entry, rate) = measure();
        if best.as_ref().map_or(true, |(_, b)| rate > *b) {
            best = Some((entry, rate));
        }
    }
    Best(best.expect("at least one rep"))
}

struct Best((Value, f64));

impl Best {
    fn map_entry(self, label: &str, workers: usize) -> (Value, f64) {
        let (entry, rate) = self.0;
        let entry = entry.with([
            ("executor", Value::str(label)),
            ("workers", Value::Int(workers as i64)),
        ]);
        (entry, rate)
    }
}

/// Sweeps one series (sequential baseline + pools at `workers`) into
/// `series`, annotating each pooled entry with its speedup over the
/// one-worker pool, and returns `(w1 rate, best pooled rate, its w)`.
fn sweep(
    series: &mut Vec<Value>,
    workers: &[usize],
    mut measure: impl FnMut(&str, usize, Option<Pool>) -> (Value, f64),
) -> (f64, f64, usize) {
    let (seq_entry, _) = measure("sequential", 1, None);
    series.push(seq_entry);
    let mut w1_rate = 0.0;
    let mut best = (0.0, 1);
    for &w in workers {
        let (entry, rate) = measure("pool", w, Some(Pool::new(w)));
        if w == 1 {
            w1_rate = rate;
        }
        if rate > best.0 {
            best = (rate, w);
        }
        let entry = if w1_rate > 0.0 {
            entry.with([("speedup_vs_workers1", Value::Num(rate / w1_rate))])
        } else {
            entry
        };
        series.push(entry);
    }
    (w1_rate, best.0, best.1)
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let mut c = Criterion::default();
    bench(&mut c, quick);

    let k = if quick { K_QUICK } else { K };
    let workers: &[usize] = if quick { &WORKERS_QUICK } else { &WORKERS };
    let solo_ns: &[usize] = if quick {
        &SOLO_T_EIG_NS_QUICK
    } else {
        &SOLO_T_EIG_NS
    };
    let (fig5_n, fig5_ell) = if quick { SOLO_FIG5_QUICK } else { SOLO_FIG5 };
    let reps = if quick { 2 } else { 3 };
    let cores = std::thread::available_parallelism().map_or(0, |p| p.get());

    let mut series = Vec::new();
    let mut scaling: Vec<(String, f64, f64, usize)> = Vec::new();

    // Across instances: the sharded scheduler.
    let (w1, best, best_w) = sweep(&mut series, workers, |label, w, pool| match pool {
        None => measure_executor(label, w, Sequential, k, reps),
        Some(pool) => measure_executor(label, w, pool, k, reps),
    });
    scaling.push((format!("sync_t_eig k={k}"), w1, best, best_w));

    // Within one instance: solo T(EIG) sizes, then solo Figure 5.
    for &n in solo_ns {
        let cell = ("solo_sync_t_eig", n, ELL, T);
        let (w1, best, best_w) = sweep(&mut series, workers, |label, w, pool| match pool {
            None => measure_solo_executor(label, w, reps, cell, || {
                run_t_eig_clean_with(Sequential, n, ELL, T)
            }),
            Some(pool) => measure_solo_executor(label, w, reps, cell, || {
                run_t_eig_clean_with(pool.clone(), n, ELL, T)
            }),
        });
        scaling.push((format!("solo_sync_t_eig n={n}"), w1, best, best_w));
    }
    let cell = ("solo_psync_fig5", fig5_n, fig5_ell, T);
    let (w1, best, best_w) = sweep(&mut series, workers, |label, w, pool| match pool {
        None => measure_solo_executor(label, w, reps, cell, || {
            run_fig5_with(
                Sequential,
                fig5_n,
                fig5_ell,
                T,
                SOLO_FIG5_GST,
                SOLO_FIG5_SEED,
            )
        }),
        Some(pool) => measure_solo_executor(label, w, reps, cell, move || {
            run_fig5_with(
                pool.clone(),
                fig5_n,
                fig5_ell,
                T,
                SOLO_FIG5_GST,
                SOLO_FIG5_SEED,
            )
        }),
    });
    scaling.push((format!("solo_psync_fig5 n={fig5_n}"), w1, best, best_w));

    // Worker-scaling summary — meaningful only with real cores to fan
    // across. On a single-core host the pools serialize onto one CPU, so
    // the comparison is skipped with the reason on record.
    if cores <= 1 {
        println!(
            "worker-scaling comparison SKIPPED: available_parallelism = {cores} — \
             pooled workers serialize on this host, so speedup curves are \
             meaningless here (the JSON records the hardware for downstream readers)"
        );
    } else {
        for (name, w1, best, best_w) in &scaling {
            let speedup = if *w1 > 0.0 { best / w1 } else { 0.0 };
            println!("{name}: best speedup vs 1 worker = {speedup:.2}x at {best_w} workers");
        }
    }

    let doc = Value::obj([
        ("bench", Value::str("parallel_shards")),
        ("mode", Value::str(if quick { "quick" } else { "full" })),
        ("available_parallelism", Value::Int(cores as i64)),
        ("series", Value::Arr(series)),
    ]);
    match write_bench_json("parallel", &doc) {
        Ok(path) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("failed to write BENCH_parallel.json: {e}"),
    }
}
