//! E12 — threaded runtime versus simulator: same automata, same verdicts;
//! the bench contrasts the wall-clock cost of thread-based lock-step
//! against the in-process simulator.

use criterion::{criterion_group, criterion_main, Criterion};
use homonym_bench::{sync_cfg, t_eig_factory};
use homonym_core::IdAssignment;
use homonym_runtime::Cluster;
use homonym_sim::Simulation;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("runtime_throughput");
    group.sample_size(10);
    let (n, ell, t) = (6usize, 4usize, 1usize);
    group.bench_function("simulator", |b| {
        let factory = t_eig_factory(ell, t);
        b.iter(|| {
            let mut sim = Simulation::builder(
                sync_cfg(n, ell, t),
                IdAssignment::stacked(ell, n).unwrap(),
                vec![true; n],
            )
            .build_with(&factory);
            let report = sim.run(factory.round_bound() + 9);
            assert!(report.verdict.all_hold());
        })
    });
    group.bench_function("threads", |b| {
        let factory = t_eig_factory(ell, t);
        b.iter(|| {
            let report = Cluster::new(
                sync_cfg(n, ell, t),
                IdAssignment::stacked(ell, n).unwrap(),
                vec![true; n],
            )
            .run(&factory, factory.round_bound() + 9);
            assert!(report.verdict.all_hold());
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
