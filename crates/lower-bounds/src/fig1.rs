//! The Proposition 1 ring construction (Figure 1): synchronous Byzantine
//! agreement is unsolvable when `ℓ ≤ 3t`, even for numerate processes.
//!
//! For an algorithm `A` designed for `n` processes with `ℓ = 3t`
//! identifiers, build one big *correct* system of `2(n − t)` processes:
//!
//! * the **X side**: identifiers `1..=2t` with input 0 — identifier 1 is a
//!   stack of `n − 3t + 1` processes, the rest singletons;
//! * the **Y side**: identifiers `t+1..=3t` with input 1 — identifier
//!   `t+1` is a stack, the rest singletons.
//!
//! Three views are carved out, each of `n − t` processes, and the
//! communication graph is exactly the union of the three view cliques:
//!
//! 1. **view I** — the Y side. Its members' joint history is a legal
//!    execution of an `n`-process system where identifiers `1..=t` are
//!    held by Byzantine processes (the X processes of identifiers `1..=t`,
//!    visible only to some members, are "explained" as Byzantine — this
//!    needs multi-send, since identifier 1 is a whole stack). All inputs
//!    are 1, so validity forces output 1.
//! 2. **view II** — the X side; symmetric, validity forces output 0.
//! 3. **view III** — X's identifiers `1..=t` plus Y's `2t+1..=3t`:
//!    a legal execution with Byzantine identifiers `t+1..=2t`; agreement
//!    forces a common output, contradicting views I and II.
//!
//! Running any deterministic algorithm in this system *must* produce a
//! property violation in at least one view — [`run`] reports which.

use std::collections::BTreeSet;
use std::fmt;

use homonym_core::{Id, IdAssignment, Pid, Protocol, ProtocolFactory, SystemConfig};
use homonym_sim::{Simulation, Topology};

/// The ring system layout.
#[derive(Clone, Debug)]
pub struct Fig1System {
    /// The tested system's process count `n`.
    pub n: usize,
    /// The tested system's fault bound `t` (so `ℓ = 3t`).
    pub t: usize,
    /// Identifier of each big-system process.
    pub assignment: IdAssignment,
    /// Input (0 = `false`, 1 = `true`) of each big-system process.
    pub inputs: Vec<bool>,
    /// The union-of-cliques communication graph.
    pub topology: Topology,
    /// The three views: members and imagined-Byzantine identifiers.
    pub views: [View; 3],
}

/// One projected view of the ring system.
#[derive(Clone, Debug)]
pub struct View {
    /// A short name ("I", "II", "III").
    pub name: &'static str,
    /// The big-system processes whose joint history forms this view.
    pub members: Vec<Pid>,
    /// The identifiers attributed to Byzantine processes in this view.
    pub byz_ids: Vec<Id>,
    /// What Byzantine agreement requires of this view: `Some(v)` if
    /// validity forces output `v`, `None` if only agreement applies.
    pub forced_output: Option<bool>,
}

/// What one view's claim evaluation produced.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ViewVerdict {
    /// The required property held in this view.
    Holds,
    /// Some member never decided.
    TerminationViolated {
        /// Members without a decision.
        undecided: Vec<Pid>,
    },
    /// Validity was violated: a member decided against the forced output.
    ValidityViolated {
        /// The offending member.
        who: Pid,
        /// What it decided.
        decided: bool,
        /// What validity forced.
        forced: bool,
    },
    /// Agreement was violated inside the view.
    AgreementViolated {
        /// One member and its decision.
        a: (Pid, bool),
        /// A conflicting member and its decision.
        b: (Pid, bool),
    },
}

impl ViewVerdict {
    /// Whether the view satisfied its claim.
    pub fn holds(&self) -> bool {
        matches!(self, ViewVerdict::Holds)
    }
}

impl fmt::Display for ViewVerdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ViewVerdict::Holds => write!(f, "holds"),
            ViewVerdict::TerminationViolated { undecided } => {
                write!(f, "termination violated ({} undecided)", undecided.len())
            }
            ViewVerdict::ValidityViolated {
                who,
                decided,
                forced,
            } => write!(
                f,
                "validity violated ({who} decided {decided} against forced {forced})"
            ),
            ViewVerdict::AgreementViolated { a, b } => write!(
                f,
                "agreement violated ({} decided {}, {} decided {})",
                a.0, a.1, b.0, b.1
            ),
        }
    }
}

/// The outcome of running an algorithm inside the ring.
#[derive(Clone, Debug)]
pub struct Fig1Report {
    /// Per-view verdicts, in view order (I, II, III).
    pub verdicts: [ViewVerdict; 3],
    /// Whether the wiring was verified: every message a view member
    /// received from outside its view carried one of the view's
    /// imagined-Byzantine identifiers (so each view really is a legal
    /// execution).
    pub views_legal: bool,
    /// Rounds executed.
    pub rounds: u64,
}

impl Fig1Report {
    /// The proposition's prediction: at least one view violates its claim.
    pub fn contradiction_exhibited(&self) -> bool {
        self.verdicts.iter().any(|v| !v.holds())
    }

    /// The first failing view (name, verdict), if any.
    pub fn failing_view(&self) -> Option<(&'static str, &ViewVerdict)> {
        const NAMES: [&str; 3] = ["I", "II", "III"];
        self.verdicts
            .iter()
            .enumerate()
            .find(|(_, v)| !v.holds())
            .map(|(k, v)| (NAMES[k], v))
    }
}

/// Builds the ring system for an algorithm designed for `n` processes and
/// `ℓ = 3t` identifiers.
///
/// # Panics
///
/// Panics if `t == 0` or `n < 3t` (the construction needs a non-empty
/// stack and at least `3t` identifiers' worth of processes).
pub fn build(n: usize, t: usize) -> Fig1System {
    assert!(
        t >= 1,
        "the construction needs at least one Byzantine identifier"
    );
    assert!(n >= 3 * t, "need n >= 3t so every identifier is assigned");
    let ell = 3 * t;
    let stack = n - ell + 1;
    let side = n - t; // processes per side

    let mut ids: Vec<Id> = Vec::new();
    let mut inputs: Vec<bool> = Vec::new();

    // X side (pids 0..side): ids 1..=2t, input 0; id 1 is the stack.
    for _ in 0..stack {
        ids.push(Id::new(1));
        inputs.push(false);
    }
    for j in 2..=(2 * t) {
        ids.push(Id::new(j as u16));
        inputs.push(false);
    }
    // Y side (pids side..2*side): ids t+1..=3t, input 1; id t+1 is the stack.
    for _ in 0..stack {
        ids.push(Id::new((t + 1) as u16));
        inputs.push(true);
    }
    for j in (t + 2)..=(3 * t) {
        ids.push(Id::new(j as u16));
        inputs.push(true);
    }
    debug_assert_eq!(ids.len(), 2 * side);

    let x_side: Vec<Pid> = (0..side).map(Pid::new).collect();
    let y_side: Vec<Pid> = (side..2 * side).map(Pid::new).collect();
    // X processes with identifiers 1..=t: the stack plus singles 2..=t.
    let x_low: Vec<Pid> = (0..(stack + t - 1)).map(Pid::new).collect();
    // Y processes with identifiers 2t+1..=3t: the last t singles.
    let y_high: Vec<Pid> = ((2 * side - t)..(2 * side)).map(Pid::new).collect();

    let views = [
        View {
            name: "I",
            members: y_side.clone(),
            byz_ids: (1..=t).map(|j| Id::new(j as u16)).collect(),
            forced_output: Some(true),
        },
        View {
            name: "II",
            members: x_side.clone(),
            byz_ids: ((2 * t + 1)..=(3 * t)).map(|j| Id::new(j as u16)).collect(),
            forced_output: Some(false),
        },
        View {
            name: "III",
            members: x_low.iter().chain(&y_high).copied().collect(),
            byz_ids: ((t + 1)..=(2 * t)).map(|j| Id::new(j as u16)).collect(),
            forced_output: None,
        },
    ];

    // Communication graph: union of the view cliques.
    let mut edges: BTreeSet<(Pid, Pid)> = BTreeSet::new();
    for view in &views {
        for &a in &view.members {
            for &b in &view.members {
                if a < b {
                    edges.insert((a, b));
                }
            }
        }
    }
    let topology = Topology::with_edges(2 * side, edges);

    Fig1System {
        n,
        t,
        assignment: IdAssignment::new(ell, ids).expect("construction covers all identifiers"),
        inputs,
        topology,
        views,
    }
}

/// Runs the algorithm produced by `factory` (designed for `ℓ = 3t`
/// identifiers and fault bound `t`) inside the ring for `horizon` rounds
/// and evaluates the three view claims.
///
/// Every process in the big system is *correct*; the Byzantine behaviour
/// exists only in each view's imagination.
pub fn run<P, F>(factory: &F, sys: &Fig1System, horizon: u64) -> Fig1Report
where
    P: Protocol<Value = bool> + Send + 'static,
    F: ProtocolFactory<P = P>,
{
    let big_n = sys.assignment.n();
    let cfg = SystemConfig::builder(big_n, 3 * sys.t, 0)
        .build()
        .expect("ring configuration is structurally valid");
    let mut sim = Simulation::builder(cfg, sys.assignment.clone(), sys.inputs.clone())
        .topology(sys.topology.clone())
        .record_trace(true)
        .build_with(factory);
    let report = sim.run_exact(horizon);

    // Verify each view is legal: outside messages only from imagined-
    // Byzantine identifiers.
    let trace = sim.trace().expect("trace was enabled");
    let mut views_legal = true;
    for view in &sys.views {
        let members: BTreeSet<Pid> = view.members.iter().copied().collect();
        for d in trace.deliveries() {
            if d.dropped || !members.contains(&d.to) || members.contains(&d.from) {
                continue;
            }
            if !view.byz_ids.contains(&d.src_id) {
                views_legal = false;
            }
        }
    }

    let decisions = sim.decisions();
    let verdict_for = |view: &View| -> ViewVerdict {
        let undecided: Vec<Pid> = view
            .members
            .iter()
            .filter(|p| !decisions.contains_key(p))
            .copied()
            .collect();
        if !undecided.is_empty() {
            return ViewVerdict::TerminationViolated { undecided };
        }
        if let Some(forced) = view.forced_output {
            for &p in &view.members {
                let (v, _) = decisions[&p];
                if v != forced {
                    return ViewVerdict::ValidityViolated {
                        who: p,
                        decided: v,
                        forced,
                    };
                }
            }
        }
        let mut iter = view.members.iter();
        let first = *iter.next().expect("views are non-empty");
        let (v0, _) = decisions[&first];
        for &p in iter {
            let (v, _) = decisions[&p];
            if v != v0 {
                return ViewVerdict::AgreementViolated {
                    a: (first, v0),
                    b: (p, v),
                };
            }
        }
        ViewVerdict::Holds
    };

    Fig1Report {
        verdicts: [
            verdict_for(&sys.views[0]),
            verdict_for(&sys.views[1]),
            verdict_for(&sys.views[2]),
        ],
        views_legal,
        rounds: report.rounds,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use homonym_classic::Eig;
    use homonym_core::Domain;
    use homonym_sync::TransformedFactory;

    #[test]
    fn layout_counts() {
        let sys = build(5, 1); // ℓ = 3, stack = 3, side = 4
        assert_eq!(sys.assignment.n(), 8);
        assert_eq!(sys.assignment.ell(), 3);
        assert_eq!(sys.assignment.group(Id::new(1)).len(), 3); // X stack
        assert_eq!(sys.assignment.group(Id::new(2)).len(), 4); // X single + Y stack
        assert_eq!(sys.assignment.group(Id::new(3)).len(), 1); // Y single
        for view in &sys.views {
            assert_eq!(view.members.len(), 4, "each view has n - t members");
        }
    }

    #[test]
    fn views_see_only_their_byzantine_ids_from_outside() {
        // Structural check: every edge crossing a view boundary lands on an
        // imagined-Byzantine identifier of that view.
        let sys = build(5, 1);
        for view in &sys.views {
            let members: BTreeSet<Pid> = view.members.iter().copied().collect();
            for &m in &view.members {
                for other in Pid::all(sys.assignment.n()) {
                    if members.contains(&other) || !sys.topology.connected(other, m) {
                        continue;
                    }
                    assert!(
                        view.byz_ids.contains(&sys.assignment.id_of(other)),
                        "view {}: outsider {other} with id {} is connected to {m}",
                        view.name,
                        sys.assignment.id_of(other)
                    );
                }
            }
        }
    }

    #[test]
    fn ring_forces_a_violation_on_t_eig() {
        // T(EIG) configured (incorrectly, per Proposition 1) for ℓ = 3t.
        let t = 1;
        let n = 5;
        let algo = Eig::new_unchecked(3 * t, t, Domain::binary());
        let factory = TransformedFactory::new(algo, t);
        let sys = build(n, t);
        let report = run(&factory, &sys, factory.round_bound() + 6);
        assert!(
            report.views_legal,
            "the construction must be a legal wiring"
        );
        assert!(
            report.contradiction_exhibited(),
            "some view must violate its claim: {:?}",
            report.verdicts
        );
    }

    #[test]
    #[should_panic(expected = "at least one Byzantine")]
    fn t_zero_rejected() {
        let _ = build(4, 0);
    }
}
