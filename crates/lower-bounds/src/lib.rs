//! Executable impossibility arguments.
//!
//! The paper's lower bounds are constructive: each impossibility proof
//! builds a concrete system and adversary under which *any* algorithm must
//! violate one of the agreement properties. This crate realizes those
//! constructions so they can be *run* against the actual algorithm
//! implementations:
//!
//! * [`fig1`] — the Proposition 1 ring: wire up `2(n − t)` correct
//!   processes so that three overlapping views each look like a legal
//!   `n`-process execution with `ℓ = 3t` identifiers; validity forces two
//!   views to decide differently and the third view straddles them, so at
//!   least one view exhibits a violation — for every algorithm you plug in.
//! * [`fig4`] — the Proposition 4 partition: record executions α (all 0)
//!   and β (all 1), then build γ where the Byzantine processes replay α to
//!   the 0-side and β to the 1-side while the network partitions them.
//!   Whenever `3t < ℓ ≤ (n + 3t)/2`, both sides decide before the
//!   partition heals — an agreement violation on the real protocol.
//! * [`clones`] — Theorem 19's reduction: against restricted Byzantine
//!   processes, innumerate homonym clones with equal inputs stay in
//!   lockstep forever, collapsing the system to `ℓ ≤ 3t` unique processes
//!   where agreement is impossible; also demonstrates that the Figure 7
//!   protocol's witness counting starves under innumerate delivery.
//! * [`search`] — bounded adversary exploration for tiny systems: the
//!   Lemma 21 multivalence construction (the adversary controls the
//!   outcome from a mixed initial configuration), an exhaustive
//!   group-uniform strategy search with state deduplication, and a
//!   two-faced **split search** whose per-side menus express the
//!   equivocation that group-uniform strategies cannot.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod clones;
pub mod fig1;
pub mod fig4;
pub mod search;
