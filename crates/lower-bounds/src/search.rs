//! Bounded adversary exploration for tiny systems (Proposition 16's
//! valency argument, made executable).
//!
//! The valency proof shows that with `ℓ ≤ t` identifiers (numerate
//! processes, restricted Byzantine senders) the adversary can forever keep
//! the system undecided: Lemma 21 exhibits a *multivalent* initial
//! configuration — one where the Byzantine process's behaviour alone
//! determines the outcome — and Lemma 22 extends multivalence round by
//! round.
//!
//! * [`multivalence_demo`] realizes Lemma 21's construction: run the same
//!   initial configuration against a Byzantine process that perfectly
//!   impersonates a correct process with input `v`, for each `v`; if
//!   different personas steer the system to different decisions, the
//!   configuration is multivalent and the adversary owns the outcome.
//! * [`exhaustive_search`] explores all per-round, group-uniform Byzantine
//!   strategies over a candidate message pool (the messages correct
//!   processes are about to send — computable by the omniscient adversary
//!   because algorithms are deterministic — plus silence), with state
//!   deduplication, hunting for safety violations within a depth budget.
//!   A clean sweep is *not* a proof of correctness; a hit is a concrete
//!   counterexample trace.
//!
//! Both searches proceed in breadth-first **depth waves**, and within a
//! wave every frontier configuration expands independently — so
//! [`exhaustive_search_with`] / [`split_search_with`] fan the wave out
//! across an [`Executor`] (pass a [`Pool`](homonym_core::Pool) to use
//! several cores). Configurations are deduplicated by a proper
//! [`Hash`] fingerprint of the correct processes' states (protocol
//! automata implement `Hash` structurally), merged back in task order so
//! results are identical at any worker count.

use std::collections::{BTreeMap, BTreeSet};
use std::hash::{DefaultHasher, Hash, Hasher};

use homonym_core::spec::{check, Outcome};
use homonym_core::{
    Counting, Envelope, Executor, IdAssignment, Inbox, Pid, Protocol, ProtocolFactory, Round,
    Sequential,
};

/// The depth-tagged dedup fingerprint of one configuration: identical
/// states at different depths behave differently, so the round number is
/// part of the key.
fn fingerprint<P: Hash>(depth: u64, procs: &[P]) -> u64 {
    let mut hasher = DefaultHasher::new();
    depth.hash(&mut hasher);
    procs.hash(&mut hasher);
    hasher.finish()
}

/// The outcome of [`multivalence_demo`].
#[derive(Clone, Debug)]
pub struct MultivalenceReport<V> {
    /// For each Byzantine persona input, the (unique) decision the correct
    /// processes reached, or `None` if they did not all decide alike.
    pub outcomes: BTreeMap<V, Option<V>>,
}

impl<V: Ord> MultivalenceReport<V> {
    /// Whether the initial configuration is multivalent: at least two
    /// persona inputs lead to different unanimous decisions.
    pub fn multivalent(&self) -> bool {
        let decided: BTreeSet<&V> = self.outcomes.values().flatten().collect();
        decided.len() >= 2
    }
}

/// Lemma 21's construction: fully synchronous runs of the protocol where
/// the single Byzantine process runs the protocol itself with input `v`
/// (an impersonation indistinguishable from a correct process — the heart
/// of Lemma 17), for each `v` in `personas`.
///
/// # Panics
///
/// Panics if `inputs.len() != assignment.n()`.
pub fn multivalence_demo<P, F>(
    factory: &F,
    assignment: &IdAssignment,
    inputs: &[P::Value],
    byz: Pid,
    personas: &[P::Value],
    horizon: u64,
) -> MultivalenceReport<P::Value>
where
    P: Protocol,
    F: ProtocolFactory<P = P>,
{
    assert_eq!(inputs.len(), assignment.n(), "one input per process");
    let mut outcomes = BTreeMap::new();
    for persona in personas {
        let mut procs: BTreeMap<Pid, P> = assignment
            .iter()
            .map(|(pid, id)| {
                let input = if pid == byz {
                    persona
                } else {
                    &inputs[pid.index()]
                };
                (pid, factory.spawn(id, input.clone()))
            })
            .collect();
        for r in 0..horizon {
            let round = Round::new(r);
            let mut deliveries: Vec<Envelope<P::Msg>> = Vec::new();
            for (&pid, p) in procs.iter_mut() {
                for (_, msg) in p.send(round) {
                    deliveries.push(Envelope {
                        src: assignment.id_of(pid),
                        msg,
                    });
                }
            }
            let inbox = Inbox::collect(deliveries, Counting::Numerate);
            for p in procs.values_mut() {
                p.receive(round, &inbox);
            }
        }
        let decisions: BTreeSet<Option<P::Value>> = procs
            .iter()
            .filter(|(&pid, _)| pid != byz)
            .map(|(_, p)| p.decision())
            .collect();
        let unanimous = if decisions.len() == 1 {
            decisions.into_iter().next().expect("non-empty")
        } else {
            None
        };
        outcomes.insert(persona.clone(), unanimous);
    }
    MultivalenceReport { outcomes }
}

/// What the exhaustive search found.
#[derive(Clone, Debug)]
pub enum SearchResult {
    /// A safety violation, with the per-round Byzantine choices that
    /// produce it (`None` = silent, `Some(k)` = replay the message correct
    /// process `k` is about to send).
    ViolationFound {
        /// The violating schedule.
        schedule: Vec<Option<usize>>,
        /// Human-readable description of the violated property.
        description: String,
    },
    /// The budget was exhausted without finding a violation. **Not** a
    /// correctness proof — only a bounded sweep.
    Exhausted {
        /// Configurations explored.
        states_explored: usize,
        /// Depth reached.
        depth: u64,
    },
}

impl SearchResult {
    /// Whether a violation was found.
    pub fn violated(&self) -> bool {
        matches!(self, SearchResult::ViolationFound { .. })
    }
}

/// Breadth-first exploration of group-uniform Byzantine strategies,
/// expanded sequentially — see [`exhaustive_search_with`] to fan the
/// frontier out across cores.
///
/// # Panics
///
/// Panics if `inputs.len() != assignment.n()`.
pub fn exhaustive_search<P, F>(
    factory: &F,
    assignment: &IdAssignment,
    inputs: &[P::Value],
    byz: Pid,
    max_depth: u64,
    max_states: usize,
) -> SearchResult
where
    P: Protocol + Clone + Hash + Send,
    F: ProtocolFactory<P = P>,
{
    exhaustive_search_with(
        factory,
        assignment,
        inputs,
        byz,
        max_depth,
        max_states,
        &Sequential,
    )
}

/// Breadth-first exploration of group-uniform Byzantine strategies.
///
/// Each round the Byzantine process either stays silent or replays the
/// bundle some correct process is about to broadcast (computable without
/// rushing: the adversary knows the deterministic algorithm and the full
/// state). All correct-process states are deduplicated across branches by
/// their [`Hash`] fingerprint (depth-tagged), and every configuration of
/// a depth wave expands as one independent `exec` task — results are
/// merged back in frontier order, so the outcome is identical at any
/// worker count.
///
/// Searches for **safety** violations: two correct processes deciding
/// differently, or a decision violating validity.
///
/// # Panics
///
/// Panics if `inputs.len() != assignment.n()`.
#[allow(clippy::too_many_arguments)]
pub fn exhaustive_search_with<P, F, E>(
    factory: &F,
    assignment: &IdAssignment,
    inputs: &[P::Value],
    byz: Pid,
    max_depth: u64,
    max_states: usize,
    exec: &E,
) -> SearchResult
where
    P: Protocol + Clone + Hash + Send,
    F: ProtocolFactory<P = P>,
    E: Executor,
{
    assert_eq!(inputs.len(), assignment.n(), "one input per process");
    let correct: Vec<Pid> = Pid::all(assignment.n()).filter(|&p| p != byz).collect();
    let initial: Vec<P> = correct
        .iter()
        .map(|&pid| factory.spawn(assignment.id_of(pid), inputs[pid.index()].clone()))
        .collect();
    let correct_inputs: BTreeMap<Pid, P::Value> = correct
        .iter()
        .map(|&pid| (pid, inputs[pid.index()].clone()))
        .collect();

    let mut frontier: Vec<(Vec<P>, Vec<Option<usize>>)> = vec![(initial, Vec::new())];
    let mut visited: BTreeSet<u64> = BTreeSet::new();
    let mut explored = 0usize;
    let mut max_reached = 0u64;
    let mut depth = 0u64;

    while !frontier.is_empty() {
        max_reached = max_reached.max(depth);
        let budget = max_states.saturating_sub(explored);
        let truncated = frontier.len() > budget;
        if truncated {
            frontier.truncate(budget);
        }
        if frontier.is_empty() {
            break;
        }
        explored += frontier.len();
        let round = Round::new(depth);

        // One task per frontier configuration: run its sends, build the
        // candidate Byzantine moves, and produce every successor branch.
        let correct = &correct;
        let tasks: Vec<_> = frontier
            .drain(..)
            .map(|(mut procs, schedule)| {
                move || {
                    let sends: Vec<Vec<(homonym_core::Recipients, P::Msg)>> =
                        procs.iter_mut().map(|p| p.send(round)).collect();

                    // Candidate byzantine moves: silence, or replaying
                    // correct k's broadcast (deduplicated).
                    let mut candidates: Vec<Option<usize>> = vec![None];
                    let mut seen_msgs: BTreeSet<&P::Msg> = BTreeSet::new();
                    for (k, out) in sends.iter().enumerate() {
                        if let Some((_, msg)) = out.first() {
                            if seen_msgs.insert(msg) {
                                candidates.push(Some(k));
                            }
                        }
                    }

                    let mut branches = Vec::with_capacity(candidates.len());
                    for choice in candidates {
                        let mut branch = procs.clone();
                        let mut deliveries: Vec<Envelope<P::Msg>> = Vec::new();
                        for (k, out) in sends.iter().enumerate() {
                            for (_, msg) in out {
                                deliveries.push(Envelope {
                                    src: assignment.id_of(correct[k]),
                                    msg: msg.clone(),
                                });
                            }
                        }
                        if let Some(k) = choice {
                            if let Some((_, msg)) = sends[k].first() {
                                deliveries.push(Envelope {
                                    src: assignment.id_of(byz),
                                    msg: msg.clone(),
                                });
                            }
                        }
                        let inbox = Inbox::collect(deliveries, Counting::Numerate);
                        for p in branch.iter_mut() {
                            p.receive(round, &inbox);
                        }
                        let mut schedule = schedule.clone();
                        schedule.push(choice);
                        let fp = fingerprint(depth + 1, &branch);
                        branches.push((schedule, branch, fp));
                    }
                    branches
                }
            })
            .collect();
        let waves = exec.scatter(tasks);

        // Merge in frontier order: safety checks first (a violation wins
        // deterministically), then fingerprint dedup into the next wave.
        for branches in waves {
            for (schedule, branch, fp) in branches {
                let outcome = Outcome {
                    inputs: correct_inputs.clone(),
                    decisions: branch
                        .iter()
                        .enumerate()
                        .filter_map(|(k, p)| p.decision().map(|v| (correct[k], (v, round))))
                        .collect(),
                    horizon: round.next(),
                };
                let verdict = check(&outcome);
                if !verdict.safe() {
                    return SearchResult::ViolationFound {
                        schedule,
                        description: verdict.to_string(),
                    };
                }
                if depth + 1 < max_depth && visited.insert(fp) {
                    frontier.push((branch, schedule));
                }
            }
        }
        if truncated {
            break;
        }
        depth += 1;
    }

    SearchResult::Exhausted {
        states_explored: explored,
        depth: max_reached,
    }
}

/// What the split search found.
#[derive(Clone, Debug)]
pub enum SplitSearchResult {
    /// A safety violation, with the per-round Byzantine choices that
    /// produce it: `(a, b)` per round, where side-A recipients receive
    /// choice `a` and the rest receive `b` (`None` = silence, `Some(k)` =
    /// replay correct process `k`'s outgoing message).
    ViolationFound {
        /// The violating schedule.
        schedule: Vec<(Option<usize>, Option<usize>)>,
        /// Human-readable description of the violated property.
        description: String,
    },
    /// Budget exhausted with no violation — a bounded sweep, not a proof.
    Exhausted {
        /// Configurations explored.
        states_explored: usize,
        /// Depth reached.
        depth: u64,
    },
}

impl SplitSearchResult {
    /// Whether a violation was found.
    pub fn violated(&self) -> bool {
        matches!(self, SplitSearchResult::ViolationFound { .. })
    }
}

/// Breadth-first exploration of **two-faced** Byzantine strategies,
/// expanded sequentially — see [`split_search_with`] to fan the frontier
/// out across cores.
///
/// # Panics
///
/// Panics if `inputs.len() != assignment.n()`.
pub fn split_search<P, F>(
    factory: &F,
    assignment: &IdAssignment,
    inputs: &[P::Value],
    byz: Pid,
    side_a: &BTreeSet<Pid>,
    max_depth: u64,
    max_states: usize,
) -> SplitSearchResult
where
    P: Protocol + Clone + Hash + Send,
    F: ProtocolFactory<P = P>,
{
    split_search_with(
        factory,
        assignment,
        inputs,
        byz,
        side_a,
        max_depth,
        max_states,
        &Sequential,
    )
}

/// Breadth-first exploration of **two-faced** Byzantine strategies: each
/// round, the Byzantine process picks one message for the recipients in
/// `side_a` and (independently) one for everyone else.
///
/// This is the equivocation the group-uniform [`exhaustive_search`]
/// cannot express, and the attack shape behind both the Figure 4
/// partition argument and the Lemma 8 hazard that the vote superround
/// guards against. The candidate messages are again the bundles correct
/// processes are about to send (plus silence), per side.
///
/// Like [`exhaustive_search_with`], each frontier configuration of a
/// depth wave expands as one independent `exec` task, merged back in
/// frontier order — identical results at any worker count.
///
/// # Panics
///
/// Panics if `inputs.len() != assignment.n()`.
#[allow(clippy::too_many_arguments)]
pub fn split_search_with<P, F, E>(
    factory: &F,
    assignment: &IdAssignment,
    inputs: &[P::Value],
    byz: Pid,
    side_a: &BTreeSet<Pid>,
    max_depth: u64,
    max_states: usize,
    exec: &E,
) -> SplitSearchResult
where
    P: Protocol + Clone + Hash + Send,
    F: ProtocolFactory<P = P>,
    E: Executor,
{
    assert_eq!(inputs.len(), assignment.n(), "one input per process");
    let correct: Vec<Pid> = Pid::all(assignment.n()).filter(|&p| p != byz).collect();
    let initial: Vec<P> = correct
        .iter()
        .map(|&pid| factory.spawn(assignment.id_of(pid), inputs[pid.index()].clone()))
        .collect();
    let correct_inputs: BTreeMap<Pid, P::Value> = correct
        .iter()
        .map(|&pid| (pid, inputs[pid.index()].clone()))
        .collect();

    type Schedule = Vec<(Option<usize>, Option<usize>)>;
    let mut frontier: Vec<(Vec<P>, Schedule)> = vec![(initial, Vec::new())];
    let mut visited: BTreeSet<u64> = BTreeSet::new();
    let mut explored = 0usize;
    let mut max_reached = 0u64;
    let mut depth = 0u64;

    while !frontier.is_empty() {
        max_reached = max_reached.max(depth);
        let budget = max_states.saturating_sub(explored);
        let truncated = frontier.len() > budget;
        if truncated {
            frontier.truncate(budget);
        }
        if frontier.is_empty() {
            break;
        }
        explored += frontier.len();
        let round = Round::new(depth);

        let correct = &correct;
        let tasks: Vec<_> = frontier
            .drain(..)
            .map(|(mut procs, schedule)| {
                move || {
                    let sends: Vec<Vec<(homonym_core::Recipients, P::Msg)>> =
                        procs.iter_mut().map(|p| p.send(round)).collect();

                    // Per-side candidates: silence or replay of a
                    // distinct message.
                    let mut candidates: Vec<Option<usize>> = vec![None];
                    let mut seen_msgs: BTreeSet<&P::Msg> = BTreeSet::new();
                    for (k, out) in sends.iter().enumerate() {
                        if let Some((_, msg)) = out.first() {
                            if seen_msgs.insert(msg) {
                                candidates.push(Some(k));
                            }
                        }
                    }

                    let mut branches = Vec::with_capacity(candidates.len().pow(2));
                    for &a in &candidates {
                        for &b in &candidates {
                            let mut branch = procs.clone();
                            // Base deliveries: all correct broadcasts
                            // reach everyone.
                            let base: Vec<Envelope<P::Msg>> = sends
                                .iter()
                                .enumerate()
                                .flat_map(|(k, out)| {
                                    let src = assignment.id_of(correct[k]);
                                    out.iter().map(move |(_, msg)| Envelope {
                                        src,
                                        msg: msg.clone(),
                                    })
                                })
                                .collect();
                            let byz_payload = |choice: Option<usize>| -> Option<Envelope<P::Msg>> {
                                choice.and_then(|k| {
                                    sends[k].first().map(|(_, msg)| Envelope {
                                        src: assignment.id_of(byz),
                                        msg: msg.clone(),
                                    })
                                })
                            };
                            for (k, p) in branch.iter_mut().enumerate() {
                                let mut deliveries = base.clone();
                                let choice = if side_a.contains(&correct[k]) { a } else { b };
                                deliveries.extend(byz_payload(choice));
                                let inbox = Inbox::collect(deliveries, Counting::Numerate);
                                p.receive(round, &inbox);
                            }
                            let mut schedule = schedule.clone();
                            schedule.push((a, b));
                            let fp = fingerprint(depth + 1, &branch);
                            branches.push((schedule, branch, fp));
                        }
                    }
                    branches
                }
            })
            .collect();
        let waves = exec.scatter(tasks);

        for branches in waves {
            for (schedule, branch, fp) in branches {
                let outcome = Outcome {
                    inputs: correct_inputs.clone(),
                    decisions: branch
                        .iter()
                        .enumerate()
                        .filter_map(|(k, p)| p.decision().map(|v| (correct[k], (v, round))))
                        .collect(),
                    horizon: round.next(),
                };
                let verdict = check(&outcome);
                if !verdict.safe() {
                    return SplitSearchResult::ViolationFound {
                        schedule,
                        description: verdict.to_string(),
                    };
                }
                if depth + 1 < max_depth && visited.insert(fp) {
                    frontier.push((branch, schedule));
                }
            }
        }
        if truncated {
            break;
        }
        depth += 1;
    }

    SplitSearchResult::Exhausted {
        states_explored: explored,
        depth: max_reached,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use homonym_core::Domain;
    use homonym_psync::RestrictedFactory;

    #[test]
    fn lemma21_multivalent_initial_configuration_at_ell_le_t() {
        // n = 4, ℓ = 1 = t: fully anonymous, one restricted Byzantine
        // process. Inputs (0, 1, 1): the Byzantine persona decides the
        // outcome — the initial configuration is multivalent, exactly
        // Lemma 21.
        let factory = RestrictedFactory::new(4, 1, 1, Domain::binary());
        let assignment = IdAssignment::anonymous(4);
        let report = multivalence_demo(
            &factory,
            &assignment,
            &[false, true, true, false],
            Pid::new(3),
            &[false, true],
            8 * 4,
        );
        assert_eq!(report.outcomes.len(), 2);
        assert!(
            report.multivalent(),
            "the adversary must control the outcome: {report:?}"
        );
    }

    #[test]
    fn solvable_configuration_is_not_adversary_controlled_on_unanimity() {
        // With unanimous inputs, validity pins the outcome regardless of
        // the persona — even at ℓ = 1 (this is not where impossibility
        // bites; it bites on mixed inputs, as the previous test shows).
        let factory = RestrictedFactory::new(4, 2, 1, Domain::binary());
        let assignment = IdAssignment::round_robin(2, 4).unwrap();
        let report = multivalence_demo(
            &factory,
            &assignment,
            &[true, true, true, true],
            Pid::new(3),
            &[false, true],
            8 * 4,
        );
        for outcome in report.outcomes.values() {
            assert_eq!(*outcome, Some(true), "{report:?}");
        }
        assert!(!report.multivalent());
    }

    #[test]
    fn bounded_search_finds_no_safety_violation_on_solvable_config() {
        // n = 4, ℓ = 2, t = 1 (solvable for restricted+numerate): the
        // sweep must come back clean.
        let factory = RestrictedFactory::new(4, 2, 1, Domain::binary());
        let assignment = IdAssignment::round_robin(2, 4).unwrap();
        let result = exhaustive_search(
            &factory,
            &assignment,
            &[false, true, false, true],
            Pid::new(3),
            10,
            2_000,
        );
        assert!(!result.violated(), "{result:?}");
    }

    /// A deliberately naive one-round protocol: broadcast the input, then
    /// decide the majority of everything heard (ties become `false`).
    /// Safe against any *group-uniform* Byzantine strategy, broken by a
    /// two-faced one — the canonical equivocation target.
    #[derive(Clone, Debug, Hash)]
    struct NaiveMajority {
        id: homonym_core::Id,
        input: bool,
        decision: Option<bool>,
    }

    impl Protocol for NaiveMajority {
        type Msg = bool;
        type Value = bool;

        fn id(&self) -> homonym_core::Id {
            self.id
        }

        fn send(&mut self, _round: Round) -> Vec<(homonym_core::Recipients, bool)> {
            vec![(homonym_core::Recipients::All, self.input)]
        }

        fn receive(&mut self, round: Round, inbox: &Inbox<bool>) {
            if round == Round::ZERO && self.decision.is_none() {
                let mut yes = 0u64;
                let mut no = 0u64;
                for (_, &v, count) in inbox.iter() {
                    if v {
                        yes += count;
                    } else {
                        no += count;
                    }
                }
                self.decision = Some(yes > no);
            }
        }

        fn decision(&self) -> Option<bool> {
            self.decision
        }
    }

    #[test]
    fn split_search_finds_equivocation_that_uniform_search_cannot() {
        use homonym_core::FnFactory;
        let factory = FnFactory::new(|id, input| NaiveMajority {
            id,
            input,
            decision: None,
        });
        let assignment = IdAssignment::unique(4);
        // Correct inputs (true, true, false): with the Byzantine silent or
        // uniform, everyone tallies the same multiset — no disagreement.
        let inputs = [true, true, false, false];
        let byz = Pid::new(3);

        let uniform = exhaustive_search(&factory, &assignment, &inputs, byz, 3, 500);
        assert!(
            !uniform.violated(),
            "group-uniform strategies cannot split a shared tally: {uniform:?}"
        );

        // Two-faced: send `true` to one side, `false` to the other — the
        // sides tally 3:1 vs 2:2 and decide differently in round 0.
        let side_a: BTreeSet<Pid> = [Pid::new(0)].into();
        let split = split_search(&factory, &assignment, &inputs, byz, &side_a, 3, 500);
        match &split {
            SplitSearchResult::ViolationFound {
                schedule,
                description,
            } => {
                assert_eq!(schedule.len(), 1, "one round suffices");
                let (a, b) = schedule[0];
                assert_ne!(a, b, "the violation requires two faces");
                assert!(description.contains("agreement"), "{description}");
            }
            SplitSearchResult::Exhausted { .. } => {
                panic!("split search must find the equivocation: {split:?}")
            }
        }
    }

    #[test]
    fn split_search_sweeps_clean_on_solvable_configuration() {
        // The real Figure 7 protocol at a solvable cell must survive every
        // two-faced schedule in budget.
        let factory = RestrictedFactory::new(4, 2, 1, Domain::binary());
        let assignment = IdAssignment::round_robin(2, 4).unwrap();
        let side_a: BTreeSet<Pid> = [Pid::new(0), Pid::new(1)].into();
        let result = split_search(
            &factory,
            &assignment,
            &[false, true, false, true],
            Pid::new(3),
            &side_a,
            9,
            1_500,
        );
        assert!(!result.violated(), "{result:?}");
    }

    #[test]
    fn pooled_search_matches_sequential() {
        use homonym_core::Pool;
        let factory = RestrictedFactory::new(4, 2, 1, Domain::binary());
        let assignment = IdAssignment::round_robin(2, 4).unwrap();
        let inputs = [false, true, false, true];
        let seq = exhaustive_search_with(
            &factory,
            &assignment,
            &inputs,
            Pid::new(3),
            8,
            800,
            &Sequential,
        );
        let pooled = exhaustive_search_with(
            &factory,
            &assignment,
            &inputs,
            Pid::new(3),
            8,
            800,
            &Pool::new(4),
        );
        match (&seq, &pooled) {
            (
                SearchResult::Exhausted {
                    states_explored: a,
                    depth: da,
                },
                SearchResult::Exhausted {
                    states_explored: b,
                    depth: db,
                },
            ) => {
                assert_eq!((a, da), (b, db), "worker count leaked into the sweep");
            }
            _ => panic!("both sweeps must exhaust identically: {seq:?} vs {pooled:?}"),
        }

        let side_a: BTreeSet<Pid> = [Pid::new(0)].into();
        let sseq = split_search_with(
            &factory,
            &assignment,
            &inputs,
            Pid::new(3),
            &side_a,
            6,
            400,
            &Sequential,
        );
        let spooled = split_search_with(
            &factory,
            &assignment,
            &inputs,
            Pid::new(3),
            &side_a,
            6,
            400,
            &Pool::new(3),
        );
        assert_eq!(
            sseq.violated(),
            spooled.violated(),
            "{sseq:?} vs {spooled:?}"
        );
    }

    #[test]
    fn bounded_search_reports_budget() {
        let factory = RestrictedFactory::new(4, 1, 1, Domain::binary());
        let assignment = IdAssignment::anonymous(4);
        let result = exhaustive_search(
            &factory,
            &assignment,
            &[false, true, true, false],
            Pid::new(3),
            6,
            500,
        );
        match result {
            SearchResult::Exhausted {
                states_explored, ..
            } => {
                assert!(states_explored > 0);
            }
            SearchResult::ViolationFound { description, .. } => {
                // Also acceptable: the sweep found a concrete safety
                // violation within budget.
                assert!(!description.is_empty());
            }
        }
    }
}
