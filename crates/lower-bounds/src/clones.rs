//! The Theorem 19 clone reduction: restricting Byzantine processes does not
//! help *innumerate* processes.
//!
//! The proof observes that if the Byzantine processes send every holder of
//! an identifier the same messages, then homonym clones with equal inputs
//! receive identical inboxes forever (innumerate reception collapses their
//! own duplicate messages), so they march in lockstep and the system is
//! indistinguishable from one with a single process per identifier — i.e.
//! a classical system of `ℓ ≤ 3t` processes, where Byzantine agreement is
//! impossible.
//!
//! Two executable pieces:
//!
//! * [`lockstep_report`] — runs any protocol with a stack of clones and a
//!   group-uniform restricted adversary, and verifies the clones send
//!   identical messages and decide identically in every round (the
//!   reduction's key invariant);
//! * [`innumerate_starvation`] — runs the Figure 7 protocol (which counts
//!   message multiplicities) under innumerate delivery and reports whether
//!   it stalls: duplicate bundles collapse, witness counts starve below
//!   `n − t`, and no progress is possible — a concrete instance of why the
//!   `ℓ > t` bound cannot survive innumeracy (Theorems 19 and 20).

use std::collections::BTreeSet;

use homonym_core::{
    Counting, Domain, Id, IdAssignment, Pid, Protocol, ProtocolFactory, Round, Synchrony,
    SystemConfig,
};
use homonym_psync::RestrictedFactory;
use homonym_sim::adversary::Mimic;
use homonym_sim::Simulation;

/// The result of a clone-lockstep run.
#[derive(Clone, Debug)]
pub struct LockstepReport {
    /// The clone processes observed.
    pub clones: Vec<Pid>,
    /// Whether all clones sent identical message sequences.
    pub sends_identical: bool,
    /// Whether all clones decided identically (value and round).
    pub decisions_identical: bool,
    /// Rounds observed.
    pub rounds: u64,
}

impl LockstepReport {
    /// The reduction's invariant: clones are indistinguishable from one
    /// process.
    pub fn in_lockstep(&self) -> bool {
        self.sends_identical && self.decisions_identical
    }
}

/// Runs `factory`'s protocol in a system where identifier 1 is held by a
/// stack of `n − ℓ + 1` clones with equal inputs, with a restricted,
/// group-uniform Byzantine process (a [`Mimic`] — it runs the real protocol,
/// which broadcasts, hence sends every clone the same thing), and verifies
/// the lockstep invariant from the trace.
pub fn lockstep_report<P, F>(
    factory: &F,
    n: usize,
    ell: usize,
    t: usize,
    input: P::Value,
    byz_input: P::Value,
    horizon: u64,
) -> LockstepReport
where
    P: Protocol + Send + 'static,
    P::Value: Send,
    F: ProtocolFactory<P = P>,
{
    let cfg = SystemConfig::builder(n, ell, t)
        .counting(Counting::Innumerate)
        .byz_power(homonym_core::ByzPower::Restricted)
        .build()
        .expect("valid configuration");
    let assignment = IdAssignment::stacked(ell, n).expect("ell <= n");
    let clones: Vec<Pid> = assignment.group(Id::new(1));
    // The Byzantine process is the last one (a singleton identifier), so
    // the whole clone stack stays correct.
    let byz = Pid::new(n - 1);
    let adversary = Mimic::new(factory, &assignment, &[(byz, byz_input)]);
    let mut sim = Simulation::builder(cfg, assignment.clone(), vec![input; n])
        .byzantine([byz], adversary)
        .record_trace(true)
        .build_with(factory);
    let report = sim.run_exact(horizon);

    let trace = sim.trace().expect("trace enabled");
    let mut sends_identical = true;
    for r in 0..horizon {
        let round = Round::new(r);
        let reference: BTreeSet<_> = trace
            .sent_by(clones[0], round)
            .map(|d| d.msg.clone())
            .collect();
        for &clone in &clones[1..] {
            let other: BTreeSet<_> = trace.sent_by(clone, round).map(|d| d.msg.clone()).collect();
            if other != reference {
                sends_identical = false;
            }
        }
    }

    let first = report.outcome.decisions.get(&clones[0]);
    let decisions_identical = clones
        .iter()
        .all(|p| report.outcome.decisions.get(p) == first);

    LockstepReport {
        clones,
        sends_identical,
        decisions_identical,
        rounds: report.rounds,
    }
}

/// The result of the innumerate-starvation experiment.
#[derive(Clone, Debug)]
pub struct StarvationReport {
    /// Whether the numerate run decided (it should).
    pub numerate_decides: bool,
    /// Whether the innumerate run decided (it should not — witness counts
    /// collapse).
    pub innumerate_decides: bool,
    /// The horizon both runs were observed to.
    pub horizon: u64,
}

impl StarvationReport {
    /// The contrast the experiment is after: counting is what makes
    /// `ℓ > t` identifiers sufficient.
    pub fn counting_is_essential(&self) -> bool {
        self.numerate_decides && !self.innumerate_decides
    }
}

/// Runs the Figure 7 protocol twice on the same homonym-heavy system —
/// once numerate, once innumerate — with no Byzantine process at all, and
/// reports which run decides. With `ℓ ≤ 3t` identifiers the innumerate run
/// starves: clones' identical bundles collapse to one, so witness counts
/// cannot reach `n − t`.
pub fn innumerate_starvation(n: usize, ell: usize, t: usize, horizon: u64) -> StarvationReport {
    let factory = RestrictedFactory::new(n, ell, t, Domain::binary());
    let run = |counting: Counting| -> bool {
        let cfg = SystemConfig::builder(n, ell, t)
            .synchrony(Synchrony::PartiallySynchronous)
            .counting(counting)
            .byz_power(homonym_core::ByzPower::Restricted)
            .build()
            .expect("valid configuration");
        let assignment = IdAssignment::stacked(ell, n).expect("ell <= n");
        let mut sim = Simulation::builder(cfg, assignment, vec![true; n]).build_with(&factory);
        sim.run(horizon).all_decided_round.is_some()
    };
    StarvationReport {
        numerate_decides: run(Counting::Numerate),
        innumerate_decides: run(Counting::Innumerate),
        horizon,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use homonym_psync::RestrictedFactory;

    #[test]
    fn clones_stay_in_lockstep() {
        // n = 5, ℓ = 2, t = 1: identifier 1 is a stack of 4 clones.
        let factory = RestrictedFactory::new(5, 2, 1, Domain::binary());
        let report = lockstep_report(&factory, 5, 2, 1, true, false, 8 * 4);
        assert_eq!(report.clones.len(), 4);
        assert!(report.sends_identical, "clones must send identically");
        assert!(report.decisions_identical);
        assert!(report.in_lockstep());
    }

    #[test]
    fn counting_is_what_ell_gt_t_buys() {
        // n = 4, ℓ = 2, t = 1 (stack of 3 on identifier 1): numerate
        // decides, innumerate starves.
        let report = innumerate_starvation(4, 2, 1, 8 * 6);
        assert!(report.numerate_decides, "{report:?}");
        assert!(!report.innumerate_decides, "{report:?}");
        assert!(report.counting_is_essential());
    }
}
