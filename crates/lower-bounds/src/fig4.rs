//! The Proposition 4 partition construction (Figure 4): partially
//! synchronous Byzantine agreement is unsolvable when `ℓ ≤ (n + 3t)/2`,
//! even for numerate processes.
//!
//! Given an algorithm for `(n, ℓ, t)` with `3t < ℓ ≤ (n + 3t)/2`:
//!
//! 1. **α** — `n` processes, identifier 1 a stack of `n − ℓ + 1`, the
//!    rest singletons; the holders of identifiers `t+1..=2t` are Byzantine
//!    and silent; all inputs 0; full delivery. Validity and termination
//!    make every correct process decide 0 by some round `rα`.
//! 2. **β** — symmetric with inputs 1 and Byzantine identifiers
//!    `2t+1..=3t`; decides 1 by `rβ`.
//! 3. **γ** — `n` processes: Byzantine identifiers `1..=t`; a **0-side**
//!    (identifiers `2t+1..=ℓ`, input 0), a **1-side** (identifiers
//!    `t+1..=2t` and `3t+1..=ℓ`, input 1), and `n − 2ℓ + 3t` padding
//!    processes isolated until the end. Messages between the sides are
//!    dropped until round `max(rα, rβ)`; the Byzantine processes replay to
//!    each 0-side process exactly what its α-counterpart received from
//!    identifiers `1..=t` in α (this impersonates the whole identifier-1
//!    stack, hence needs multi-send), and symmetrically replay β to the
//!    1-side.
//!
//! The 0-side cannot distinguish γ from α, so it decides 0; the 1-side
//! decides 1 — an agreement violation on the real protocol, with only
//! finitely many messages dropped (legal in the basic partially
//! synchronous model).

use std::collections::{BTreeMap, BTreeSet};

use homonym_core::exec::{Executor, Sequential};
use homonym_core::{Id, IdAssignment, Pid, Protocol, ProtocolFactory, Round, SystemConfig};
use homonym_sim::adversary::{Compose, Silent, TraceReplayer};
use homonym_sim::{Both, IsolateUntil, PartitionUntil, Simulation, Trace};

/// The outcome of the construction.
#[derive(Clone, Debug)]
pub enum Fig4Outcome {
    /// The reference execution α (or β) did not decide within the horizon,
    /// so the algorithm forfeits termination instead of agreement — also a
    /// Byzantine agreement violation, reported as such.
    ReferenceStalled {
        /// Which reference execution stalled ("alpha" or "beta").
        which: &'static str,
        /// The observation horizon.
        horizon: u64,
    },
    /// γ ran; the construction predicts (and the test asserts) an
    /// agreement violation between the sides.
    Partitioned {
        /// Decisions of the 0-side processes.
        zero_side: BTreeMap<Pid, Option<bool>>,
        /// Decisions of the 1-side processes.
        one_side: BTreeMap<Pid, Option<bool>>,
        /// Round at which the partition healed (`max(rα, rβ) + 1`).
        healed_at: u64,
        /// Whether the replay was perfect: every 0-side process received
        /// in γ, round for round, exactly the multiset of messages its
        /// α-counterpart received (and symmetrically for the 1-side).
        replay_faithful: bool,
    },
}

impl Fig4Outcome {
    /// Whether the run exhibited a Byzantine agreement violation
    /// (disagreement between the sides, or a stalled reference run).
    pub fn violation_exhibited(&self) -> bool {
        match self {
            Fig4Outcome::ReferenceStalled { .. } => true,
            Fig4Outcome::Partitioned {
                zero_side,
                one_side,
                ..
            } => {
                let zeros: BTreeSet<Option<bool>> = zero_side.values().copied().collect();
                let ones: BTreeSet<Option<bool>> = one_side.values().copied().collect();
                zeros.contains(&Some(false)) && ones.contains(&Some(true))
                    || zero_side.values().any(|d| d.is_none())
                    || one_side.values().any(|d| d.is_none())
            }
        }
    }

    /// Whether it was specifically the predicted *agreement* violation:
    /// every 0-side process decided 0 and every 1-side process decided 1.
    pub fn split_brain(&self) -> bool {
        match self {
            Fig4Outcome::ReferenceStalled { .. } => false,
            Fig4Outcome::Partitioned {
                zero_side,
                one_side,
                ..
            } => {
                zero_side.values().all(|d| *d == Some(false))
                    && one_side.values().all(|d| *d == Some(true))
            }
        }
    }
}

/// The α/β reference layout: identifier 1 stacked, everything else single.
fn reference_assignment(n: usize, ell: usize) -> IdAssignment {
    IdAssignment::stacked(ell, n).expect("ell <= n")
}

/// The process holding single identifier `j ≥ 2` in the reference layout.
fn reference_pid_of_id(n: usize, ell: usize, j: usize) -> Pid {
    debug_assert!(j >= 2 && j <= ell);
    Pid::new(n - ell + j - 1)
}

/// Runs one reference execution (inputs all `input`, Byzantine identifiers
/// `byz_ids` silent) and returns its trace and the all-decided round.
fn run_reference<P, F, E>(
    factory: &F,
    cfg: SystemConfig,
    input: bool,
    byz_ids: std::ops::RangeInclusive<usize>,
    horizon: u64,
    exec: E,
) -> (Trace<P::Msg>, Option<u64>)
where
    P: Protocol<Value = bool> + Send + 'static,
    F: ProtocolFactory<P = P>,
    E: Executor,
{
    let assignment = reference_assignment(cfg.n, cfg.ell);
    let byz: Vec<Pid> = byz_ids
        .map(|j| reference_pid_of_id(cfg.n, cfg.ell, j))
        .collect();
    let mut sim = Simulation::builder(cfg, assignment, vec![input; cfg.n])
        .byzantine(byz, Silent)
        .record_trace(true)
        .executor(exec)
        .build_with(factory);
    let report = sim.run_exact(horizon);
    let decided = report.all_decided_round.map(|r| r.index());
    (sim.into_trace().expect("trace enabled"), decided)
}

/// Builds and runs the whole construction for the algorithm produced by
/// `factory`, which must be configured for exactly `(n, ℓ, t)`.
///
/// `horizon` bounds the reference executions (choose it above the
/// algorithm's decision bound).
///
/// # Panics
///
/// Panics unless `3t < ℓ ≤ (n + 3t)/2` and `t ≥ 1` — the construction's
/// applicability range.
pub fn run<P, F>(factory: &F, cfg: SystemConfig, horizon: u64) -> Fig4Outcome
where
    P: Protocol<Value = bool> + Send + 'static,
    F: ProtocolFactory<P = P>,
{
    run_with(factory, cfg, horizon, Sequential)
}

/// [`run`], with every simulation of the construction (the α/β
/// references and γ itself) stepped on the given executor — the
/// construction is a pure function of its traces, so any worker count
/// reproduces the sequential outcome bit for bit
/// (`tests/fabric_golden.rs` pins this).
///
/// # Panics
///
/// Panics on the same applicability violations as [`run`].
pub fn run_with<P, F, E>(factory: &F, cfg: SystemConfig, horizon: u64, exec: E) -> Fig4Outcome
where
    P: Protocol<Value = bool> + Send + 'static,
    F: ProtocolFactory<P = P>,
    E: Executor + Clone,
{
    let (n, ell, t) = (cfg.n, cfg.ell, cfg.t);
    assert!(t >= 1, "the construction needs a Byzantine process");
    assert!(ell > 3 * t, "for ell <= 3t use the Figure 1 construction");
    assert!(
        2 * ell <= n + 3 * t,
        "ell > (n + 3t)/2 is solvable; the construction does not apply"
    );

    // Step 1 and 2: record α and β.
    let (alpha, r_alpha) = run_reference(
        factory,
        cfg,
        false,
        (t + 1)..=(2 * t),
        horizon,
        exec.clone(),
    );
    let Some(r_alpha) = r_alpha else {
        return Fig4Outcome::ReferenceStalled {
            which: "alpha",
            horizon,
        };
    };
    let (beta, r_beta) = run_reference(
        factory,
        cfg,
        true,
        (2 * t + 1)..=(3 * t),
        horizon,
        exec.clone(),
    );
    let Some(r_beta) = r_beta else {
        return Fig4Outcome::ReferenceStalled {
            which: "beta",
            horizon,
        };
    };
    let heal = r_alpha.max(r_beta) + 1;

    // Step 3: lay out γ.
    //   pids 0..t:                Byzantine, identifiers 1..=t
    //   next ℓ−2t pids:           0-side, identifiers 2t+1..=ℓ, input 0
    //   next ℓ−2t pids:           1-side, identifiers t+1..=2t, 3t+1..=ℓ, input 1
    //   remaining n−2ℓ+3t pids:   padding, identifier 2t+1, input 0, isolated
    let side = ell - 2 * t;
    let mut ids: Vec<Id> = Vec::new();
    let mut inputs: Vec<bool> = Vec::new();
    for j in 1..=t {
        ids.push(Id::new(j as u16));
        inputs.push(false); // ignored: Byzantine
    }
    let zero_ids: Vec<usize> = ((2 * t + 1)..=ell).collect();
    for &j in &zero_ids {
        ids.push(Id::new(j as u16));
        inputs.push(false);
    }
    let one_ids: Vec<usize> = ((t + 1)..=(2 * t)).chain((3 * t + 1)..=ell).collect();
    for &j in &one_ids {
        ids.push(Id::new(j as u16));
        inputs.push(true);
    }
    let pad = n - (t + 2 * side);
    for _ in 0..pad {
        ids.push(Id::new((2 * t + 1) as u16));
        inputs.push(false);
    }
    let assignment = IdAssignment::new(ell, ids).expect("gamma covers all identifiers");

    let byz: Vec<Pid> = (0..t).map(Pid::new).collect();
    let zero_pids: Vec<Pid> = (t..t + side).map(Pid::new).collect();
    let one_pids: Vec<Pid> = (t + side..t + 2 * side).map(Pid::new).collect();
    let pad_pids: BTreeSet<Pid> = (t + 2 * side..n).map(Pid::new).collect();

    // Replay maps: γ-side process → reference process with the same single
    // identifier.
    let zero_map: BTreeMap<Pid, Pid> = zero_pids
        .iter()
        .zip(&zero_ids)
        .map(|(&p, &j)| (p, reference_pid_of_id(n, ell, j)))
        .collect();
    let one_map: BTreeMap<Pid, Pid> = one_pids
        .iter()
        .zip(&one_ids)
        .map(|(&p, &j)| (p, reference_pid_of_id(n, ell, j)))
        .collect();

    let adversary = Compose::new(vec![
        Box::new(TraceReplayer::new(alpha.clone(), zero_map.clone())),
        Box::new(TraceReplayer::new(beta.clone(), one_map.clone())),
    ]);
    let drops = Both(
        PartitionUntil::new(
            vec![
                zero_pids.iter().copied().collect(),
                one_pids.iter().copied().collect(),
            ],
            Round::new(heal),
        ),
        IsolateUntil::new(pad_pids, Round::new(heal)),
    );

    let mut sim = Simulation::builder(cfg, assignment, inputs)
        .byzantine(byz, adversary)
        .drops(drops)
        .record_trace(true)
        .executor(exec)
        .build_with(factory);
    let gamma_report = sim.run_exact(heal);

    // Fidelity check: each side received, per round, exactly what its
    // reference counterpart received (as innumerate/numerate-agnostic
    // multisets of (identifier, message)).
    let gamma_trace = sim.trace().expect("trace enabled");
    let mut replay_faithful = true;
    for (map, reference) in [(&zero_map, &alpha), (&one_map, &beta)] {
        for (&gpid, &rpid) in map.iter() {
            for r in 0..heal.min(8) {
                let round = Round::new(r);
                let mut got: Vec<_> = gamma_trace
                    .received_by(gpid, round)
                    .map(|d| (d.src_id, d.msg.clone()))
                    .collect();
                let mut want: Vec<_> = reference
                    .received_by(rpid, round)
                    .map(|d| (d.src_id, d.msg.clone()))
                    .collect();
                got.sort();
                want.sort();
                if got != want {
                    replay_faithful = false;
                }
            }
        }
    }

    let decisions = &gamma_report.outcome.decisions;
    let collect = |pids: &[Pid]| -> BTreeMap<Pid, Option<bool>> {
        pids.iter()
            .map(|&p| (p, decisions.get(&p).map(|&(v, _)| v)))
            .collect()
    };
    Fig4Outcome::Partitioned {
        zero_side: collect(&zero_pids),
        one_side: collect(&one_pids),
        healed_at: heal,
        replay_faithful,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use homonym_core::{Domain, Synchrony};
    use homonym_psync::AgreementFactory;

    fn cfg(n: usize, ell: usize, t: usize) -> SystemConfig {
        SystemConfig::builder(n, ell, t)
            .synchrony(Synchrony::PartiallySynchronous)
            .build()
            .unwrap()
    }

    #[test]
    fn reference_layout() {
        let a = reference_assignment(5, 4);
        assert_eq!(a.group(Id::new(1)).len(), 2);
        assert_eq!(reference_pid_of_id(5, 4, 2), Pid::new(2));
        assert_eq!(reference_pid_of_id(5, 4, 4), Pid::new(4));
        assert_eq!(a.id_of(reference_pid_of_id(5, 4, 3)), Id::new(3));
    }

    #[test]
    fn headline_case_n5_ell4_t1_split_brain() {
        // The paper's surprise: t = 1, ℓ = 4 works for n = 4 but not n = 5.
        // Here is n = 5 failing concretely.
        let cfg = cfg(5, 4, 1);
        let factory = AgreementFactory::new(5, 4, 1, Domain::binary());
        let outcome = run(&factory, cfg, 8 * 12);
        assert!(outcome.violation_exhibited(), "{outcome:?}");
        match &outcome {
            Fig4Outcome::Partitioned {
                replay_faithful, ..
            } => {
                assert!(replay_faithful, "replay must mirror the references");
                assert!(outcome.split_brain(), "{outcome:?}");
            }
            Fig4Outcome::ReferenceStalled { .. } => {
                panic!("Figure 5 protocol should decide in the reference runs")
            }
        }
    }

    #[test]
    fn larger_case_n7_ell5_t1() {
        // 2ℓ = 10 ≤ n + 3t = 10: unsolvable; the construction applies.
        let cfg = cfg(7, 5, 1);
        let factory = AgreementFactory::new(7, 5, 1, Domain::binary());
        let outcome = run(&factory, cfg, 8 * 12);
        assert!(outcome.violation_exhibited(), "{outcome:?}");
    }

    #[test]
    #[should_panic(expected = "solvable")]
    fn solvable_configuration_rejected() {
        let cfg = cfg(4, 4, 1); // 2ℓ = 8 > 7: solvable
        let factory = AgreementFactory::new(4, 4, 1, Domain::binary());
        let _ = run(&factory, cfg, 64);
    }
}
