//! The authenticated broadcast of Proposition 6.
//!
//! A straightforward generalization of Srikanth–Toueg echo broadcast to
//! identifiers: to `Broadcast(m)` in superround `r`, send `⟨init m⟩` in the
//! first round of superround `r`; whoever receives it from identifier `i`
//! echoes `⟨echo m, r, i⟩` in every subsequent round; whoever has seen the
//! echo from `ℓ − 2t` distinct identifiers joins the echoing; whoever has
//! seen it from `ℓ − t` distinct identifiers performs `Accept(m, i)`.
//!
//! Guarantees (for `ℓ > 3t`, in the basic partially synchronous model):
//!
//! * **Correctness** — a broadcast by a correct process in superround
//!   `r ≥ T` is accepted by every correct process within superround `r`;
//! * **Unforgeability** — if every holder of identifier `i` is correct and
//!   none broadcast `m`, nobody accepts `(m, i)`: seeding an echo requires
//!   `ℓ − 2t > t` distinct identifiers, more than the Byzantine processes
//!   control;
//! * **Relay** — once any correct process accepts `(m, i)`, every correct
//!   process accepts it by superround `max(r + 1, T)` (echoes are
//!   retransmitted forever).

use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

use homonym_core::codec::{DecodeError, Reader, WireDecode, WireEncode, Writer};
use homonym_core::intern::Tok;
use homonym_core::{Id, IdBits, Interner, Message, Round, WireSize};

/// An `⟨echo m, r, i⟩` item: this sender vouches that identifier `src`
/// performed `Broadcast(payload)` in superround `sr`.
///
/// The payload is held behind an [`Arc`] (shared with the sender's
/// interner), so the per-round retransmission of the full echo set moves
/// pointers, never payloads. `Arc` forwards `Debug`/`Ord`/`Eq` to the
/// payload, so the wire rendering and ordering are those of the payload
/// itself.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct EchoItem<M> {
    /// The broadcast payload `m`.
    pub payload: Arc<M>,
    /// The superround `r` of the original `⟨init m⟩`.
    pub sr: u64,
    /// The identifier `i` the broadcast is attributed to.
    pub src: Id,
}

impl<M> EchoItem<M> {
    /// An item vouching that `src` broadcast `payload` in superround `sr`.
    pub fn new(payload: M, sr: u64, src: Id) -> Self {
        EchoItem {
            payload: Arc::new(payload),
            sr,
            src,
        }
    }
}

impl<M: WireSize> WireSize for EchoItem<M> {
    fn wire_bits(&self) -> u64 {
        self.payload.wire_bits() + self.sr.wire_bits() + self.src.wire_bits()
    }
}

impl<M: WireEncode> WireEncode for EchoItem<M> {
    fn encode(&self, w: &mut Writer) {
        self.payload.encode(w);
        self.sr.encode(w);
        self.src.encode(w);
    }
}

impl<M: WireDecode> WireDecode for EchoItem<M> {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(EchoItem {
            payload: Arc::new(M::decode(r)?),
            sr: u64::decode(r)?,
            src: Id::decode(r)?,
        })
    }
}

/// An `Accept(m, i)` event.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct Accept<M> {
    /// The accepted payload.
    pub payload: M,
    /// The identifier it is attributed to.
    pub src: Id,
    /// The superround of the original broadcast.
    pub sr: u64,
}

/// The small copyable key the hot maps are indexed by: the interned
/// payload token, the superround, and the attributed identifier.
type EchoKey = (Tok, u64, Id);

/// One process's view of the echo-broadcast layer.
///
/// The component is transport-agnostic: the owning protocol embeds the
/// items produced by [`EchoBroadcast::to_send`] in its per-round bundle and
/// feeds extracted items back through [`EchoBroadcast::observe`].
///
/// Internally every payload is interned once
/// ([`Interner`]) and the echo/evidence/accept tables key on small
/// copyable `(token, superround, identifier)` tuples; evidence sets are
/// identifier bitsets ([`IdBits`]) whose threshold checks are popcounts.
/// Wire-visible behaviour — the items emitted and the accepts performed,
/// in order — is identical to the original deep-keyed implementation
/// (`proptests::interned_matches_reference_*` pins this against a kept
/// copy of that code).
///
/// # Example
///
/// ```
/// use homonym_core::{Id, Round};
/// use homonym_psync::EchoBroadcast;
///
/// // ℓ = 4 identifiers, t = 1.
/// let mut bc: EchoBroadcast<&str> = EchoBroadcast::new(4, 1);
/// bc.broadcast("hello");
/// let (inits, _echoes) = bc.to_send(Round::new(0));
/// assert_eq!(inits, vec!["hello"]);
/// ```
#[derive(Clone, Debug)]
pub struct EchoBroadcast<M> {
    ell: usize,
    t: usize,
    /// Every distinct payload seen, interned once.
    intern: Interner<M>,
    /// Keys this process echoes in every round from now on.
    echoing: BTreeSet<EchoKey>,
    /// The wire form of `echoing`, maintained incrementally behind an
    /// [`Arc`] — bundles embed this handle directly, so retransmitting
    /// the full echo set every round moves one pointer, and receivers
    /// can pointer-compare it to skip re-scanning an unchanged set.
    wire: Arc<BTreeSet<EchoItem<M>>>,
    /// The wire set as of the previous hand-out whose content differed —
    /// together with `delta` (`wire == prev ∪ delta`) this is the
    /// receive-side shortcut: a receiver that already counted `prev`
    /// only scans `delta`.
    prev: Arc<BTreeSet<EchoItem<M>>>,
    /// The items joined since `prev`.
    delta: Arc<BTreeSet<EchoItem<M>>>,
    /// Distinct identifiers seen echoing each key.
    evidence: BTreeMap<EchoKey, IdBits>,
    /// Keys already accepted (each accept fires once).
    accepted: BTreeSet<EchoKey>,
    /// Payloads queued for `⟨init⟩` at the next first-of-superround send.
    queue: Vec<M>,
    /// Bumped whenever `echoing` grows — the owning protocol compares
    /// generations to learn whether the outgoing echo set changed since
    /// it last built a bundle.
    generation: u64,
    /// Scratch: keys whose evidence grew this `observe` call, so the
    /// threshold sweep touches only what changed instead of re-scanning
    /// the whole evidence table every round.
    dirty: Vec<EchoKey>,
}

impl<M: Message> EchoBroadcast<M> {
    /// Creates the layer for `ell` identifiers tolerating `t` faults.
    ///
    /// The thresholds are `ℓ − 2t` (echo join) and `ℓ − t` (accept); for
    /// `ℓ ≤ 3t` they lose their guarantees, but the component still
    /// operates — lower-bound experiments run it out of range on purpose.
    pub fn new(ell: usize, t: usize) -> Self {
        let empty = Arc::new(BTreeSet::new());
        EchoBroadcast {
            ell,
            t,
            intern: Interner::new(),
            echoing: BTreeSet::new(),
            wire: Arc::clone(&empty),
            prev: Arc::clone(&empty),
            delta: empty,
            evidence: BTreeMap::new(),
            accepted: BTreeSet::new(),
            queue: Vec::new(),
            generation: 0,
            dirty: Vec::new(),
        }
    }

    /// Starts echoing `key` (idempotent); keeps the shared wire set and
    /// its delta in step and advances the generation on growth.
    fn start_echoing(&mut self, key: EchoKey) {
        if self.echoing.insert(key) {
            self.generation += 1;
            let (tok, sr, src) = key;
            let payload = Arc::clone(self.intern.resolve_shared(tok));
            let item = EchoItem { payload, sr, src };
            // Clone-on-write: receivers and cached bundles holding the
            // previous wire set keep it; the clone moves Arc handles.
            Arc::make_mut(&mut self.wire).insert(item.clone());
            Arc::make_mut(&mut self.delta).insert(item);
        }
    }

    /// The accept threshold `ℓ − t` (saturating).
    pub fn accept_threshold(&self) -> usize {
        self.ell.saturating_sub(self.t)
    }

    /// The echo-join threshold `ℓ − 2t` (saturating, at least 1 so a
    /// forged zero-threshold can never arise).
    pub fn join_threshold(&self) -> usize {
        self.ell.saturating_sub(2 * self.t).max(1)
    }

    /// Queues `Broadcast(payload)`: the `⟨init⟩` goes out at the next
    /// first-of-superround send.
    pub fn broadcast(&mut self, payload: M) {
        self.queue.push(payload);
    }

    /// The items to embed in this round's bundle: `⟨init⟩`s (only in the
    /// first round of a superround) and all active echoes, sorted by
    /// `(payload, superround, identifier)`.
    pub fn to_send(&mut self, round: Round) -> (Vec<M>, Vec<EchoItem<M>>) {
        let (inits, echoes) = self.shared_to_send(round);
        (inits, echoes.iter().cloned().collect())
    }

    /// [`to_send`](EchoBroadcast::to_send) with the echoes as the shared
    /// ordered set the bundle embeds directly — the owning protocol's
    /// build path, one `Arc` bump instead of a set construction.
    pub(crate) fn shared_to_send(&mut self, round: Round) -> (Vec<M>, Arc<BTreeSet<EchoItem<M>>>) {
        let inits = if round.is_first_of_superround() {
            std::mem::take(&mut self.queue)
        } else {
            Vec::new()
        };
        (inits, Arc::clone(&self.wire))
    }

    /// The incremental-scan hint shipped alongside the wire set: the
    /// previously handed-out version and the items joined since
    /// (`wire == prev ∪ delta`). Calling this hands the current version
    /// out, so future growth accumulates into a fresh delta against it.
    pub(crate) fn wire_delta(
        &mut self,
    ) -> (Arc<BTreeSet<EchoItem<M>>>, Arc<BTreeSet<EchoItem<M>>>) {
        let hint = (Arc::clone(&self.prev), Arc::clone(&self.delta));
        if !self.delta.is_empty() {
            self.prev = Arc::clone(&self.wire);
            self.delta = Arc::new(BTreeSet::new());
        }
        hint
    }

    /// Whether a queued `Broadcast` would emit an `⟨init⟩` if
    /// [`to_send`](EchoBroadcast::to_send) ran at `round`.
    pub(crate) fn init_due(&self, round: Round) -> bool {
        round.is_first_of_superround() && !self.queue.is_empty()
    }

    /// A counter that advances whenever the outgoing echo set grows.
    /// Equal generations ⇒ [`to_send`](EchoBroadcast::to_send) emits the
    /// same echoes — what lets the owning protocol reuse a cached bundle.
    pub(crate) fn generation(&self) -> u64 {
        self.generation
    }

    /// Feeds one round's received items: `inits` as `(sender identifier,
    /// payload)` pairs — only meaningful in the first round of a superround
    /// — and `echoes` as `(echoing identifier, item)` pairs. Returns the
    /// accepts newly performed.
    pub fn observe(
        &mut self,
        round: Round,
        inits: &[(Id, &M)],
        echoes: &[(Id, &EchoItem<M>)],
    ) -> Vec<Accept<M>> {
        // An ⟨init m⟩ from identifier i in the first round of superround r
        // starts our echoing of (m, r, i) from the next round on.
        if round.is_first_of_superround() {
            let sr = round.superround().index();
            for &(src, payload) in inits {
                let key = (self.intern.intern(payload), sr, src);
                self.start_echoing(key);
            }
        }

        // Record echo evidence by distinct echoing identifier; only keys
        // whose evidence grew are re-checked against the thresholds
        // (evidence never shrinks, so a key that crossed a threshold
        // earlier was handled the round it crossed).
        let ell = self.ell;
        let mut dirty = std::mem::take(&mut self.dirty);
        dirty.clear();
        for &(echoer, item) in echoes {
            let key = (self.intern.intern_shared(&item.payload), item.sr, item.src);
            let bits = self
                .evidence
                .entry(key)
                .or_insert_with(|| IdBits::with_capacity(ell));
            if bits.insert(echoer.index()) {
                dirty.push(key);
            }
        }
        dirty.sort_unstable();
        dirty.dedup();

        // Join echoing at ℓ − 2t, accept at ℓ − t (both are popcount
        // reads now). Accepts are reported in the order the deep-keyed
        // implementation produced them: ascending (payload, sr, src).
        let join = self.join_threshold();
        let accept = self.accept_threshold();
        let mut accepts = Vec::new();
        for &key in &dirty {
            let supporters = self.evidence[&key].len();
            if supporters >= join {
                self.start_echoing(key);
            }
            if supporters >= accept && self.accepted.insert(key) {
                accepts.push(Accept {
                    payload: self.intern.resolve(key.0).clone(),
                    sr: key.1,
                    src: key.2,
                });
            }
        }
        self.dirty = dirty;
        accepts.sort_by(|a, b| (&a.payload, a.sr, a.src).cmp(&(&b.payload, b.sr, b.src)));
        accepts
    }

    /// Whether `(payload, src)` has been accepted (at any superround).
    pub fn has_accepted(&self, payload: &M, src: Id) -> bool {
        let Some(tok) = self.intern.get(payload) else {
            return false;
        };
        self.accepted.iter().any(|&(m, _, i)| m == tok && i == src)
    }

    /// Number of keys currently being echoed (diagnostic; grows over the
    /// run because echoes are retransmitted forever, which the relay
    /// property requires).
    pub fn echoing_len(&self) -> usize {
        self.echoing.len()
    }

    /// Structural state-size estimate in bits, on the same per-entry
    /// scale as the bounded layer's
    /// [`state_bits`](crate::BoundedEchoBroadcast::state_bits), so
    /// faithful-vs-bounded comparisons measure entry counts, not
    /// representation tricks. Grows O(history) here — that growth is the
    /// number the bounded variant exists to remove.
    pub fn state_bits(&self) -> u64 {
        let key = 192u64;
        (self.echoing.len() as u64) * key
            + (self.wire.len() as u64) * key
            + (self.evidence.len() as u64) * (key + self.ell as u64)
            + (self.accepted.len() as u64) * key
            + (self.intern.len() as u64) * 128
            + (self.queue.len() as u64) * 64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A tiny synchronous network of `ell` correct processes (one per
    /// identifier) running only the broadcast layer.
    struct Net {
        procs: Vec<EchoBroadcast<&'static str>>,
        round: Round,
    }

    impl Net {
        fn new(ell: usize, t: usize) -> Self {
            Net {
                procs: (0..ell).map(|_| EchoBroadcast::new(ell, t)).collect(),
                round: Round::ZERO,
            }
        }

        /// Runs one round with full delivery plus adversarial extra items.
        fn step(
            &mut self,
            extra_inits: &[(Id, &'static str)],
            extra_echoes: &[(Id, EchoItem<&'static str>)],
        ) -> Vec<Vec<Accept<&'static str>>> {
            let r = self.round;
            let mut all_inits: Vec<(Id, &'static str)> = extra_inits.to_vec();
            let mut all_echoes: Vec<(Id, EchoItem<&'static str>)> = extra_echoes.to_vec();
            for (k, p) in self.procs.iter_mut().enumerate() {
                let (inits, echoes) = p.to_send(r);
                let id = Id::from_index(k);
                for m in inits {
                    all_inits.push((id, m));
                }
                for e in echoes {
                    all_echoes.push((id, e));
                }
            }
            let inits_ref: Vec<(Id, &&'static str)> =
                all_inits.iter().map(|(i, m)| (*i, m)).collect();
            let echoes_ref: Vec<(Id, &EchoItem<&'static str>)> =
                all_echoes.iter().map(|(i, e)| (*i, e)).collect();
            let out = self
                .procs
                .iter_mut()
                .map(|p| p.observe(r, &inits_ref, &echoes_ref))
                .collect();
            self.round = r.next();
            out
        }
    }

    #[test]
    fn correctness_accept_within_the_superround() {
        let mut net = Net::new(4, 1);
        net.procs[0].broadcast("m");
        let accepts = net.step(&[], &[]); // round 0: init flows
        assert!(accepts.iter().all(|a| a.is_empty()));
        let accepts = net.step(&[], &[]); // round 1: echoes flow, accept
        for per_proc in &accepts {
            assert_eq!(per_proc.len(), 1);
            assert_eq!(per_proc[0].payload, "m");
            assert_eq!(per_proc[0].src, Id::new(1));
            assert_eq!(per_proc[0].sr, 0);
        }
    }

    #[test]
    fn accept_fires_once() {
        let mut net = Net::new(4, 1);
        net.procs[0].broadcast("m");
        net.step(&[], &[]);
        net.step(&[], &[]);
        // Echoes keep flowing but the accept must not repeat.
        let accepts = net.step(&[], &[]);
        assert!(accepts.iter().all(|a| a.is_empty()));
        assert!(net.procs[2].has_accepted(&"m", Id::new(1)));
    }

    #[test]
    fn unforgeability_t_echoes_do_not_seed() {
        // t = 1 Byzantine identifier injects echoes for a message nobody
        // broadcast; ℓ − 2t = 2 > 1, so the echo never catches on.
        let mut net = Net::new(4, 1);
        let forged = EchoItem::new("forged", 0, Id::new(2));
        for _ in 0..6 {
            let accepts = net.step(&[], &[(Id::new(4), forged.clone())]);
            assert!(accepts.iter().all(|a| a.is_empty()));
        }
        assert!(!net.procs[0].has_accepted(&"forged", Id::new(2)));
    }

    #[test]
    fn byzantine_init_can_be_accepted_but_attributed_correctly() {
        // A Byzantine identifier CAN get its own broadcast accepted — the
        // broadcast only authenticates the identifier, it does not certify
        // correctness of the content.
        let mut net = Net::new(4, 1);
        let accepts = net.step(&[(Id::new(3), "lie")], &[]);
        assert!(accepts.iter().all(|a| a.is_empty()));
        let accepts = net.step(&[], &[]);
        for per_proc in &accepts {
            assert_eq!(per_proc.len(), 1);
            assert_eq!(per_proc[0].src, Id::new(3));
        }
    }

    #[test]
    fn relay_via_continued_echoes() {
        // Process 0 accepts thanks to echoes the others never saw (they
        // were "dropped"); once it echoes itself and the network heals,
        // everyone else accepts one superround later.
        let ell = 4;
        let t = 1;
        let mut lonely: EchoBroadcast<&'static str> = EchoBroadcast::new(ell, t);
        let item = EchoItem::new("m", 0, Id::new(1));
        // ℓ − t = 3 distinct identifiers echo to process 0 only.
        let echoes: Vec<(Id, EchoItem<&'static str>)> =
            (2..=4).map(|i| (Id::new(i), item.clone())).collect();
        let refs: Vec<(Id, &EchoItem<&'static str>)> =
            echoes.iter().map(|(i, e)| (*i, e)).collect();
        let accepts = lonely.observe(Round::new(1), &[], &refs);
        assert_eq!(accepts.len(), 1);
        // It now echoes the key forever — the relay mechanism.
        let (_, out) = lonely.to_send(Round::new(2));
        assert!(out.iter().any(|e| *e.payload == "m" && e.src == Id::new(1)));
    }

    #[test]
    fn init_outside_first_round_of_superround_is_ignored() {
        let mut p: EchoBroadcast<&'static str> = EchoBroadcast::new(4, 1);
        // Round 1 is the second round of superround 0.
        let accepts = p.observe(Round::new(1), &[(Id::new(2), &"late")], &[]);
        assert!(accepts.is_empty());
        let (_, echoes) = p.to_send(Round::new(2));
        assert!(echoes.is_empty(), "late init must not start echoing");
    }

    #[test]
    fn queued_broadcast_waits_for_superround_start() {
        let mut p: EchoBroadcast<&'static str> = EchoBroadcast::new(4, 1);
        p.broadcast("m");
        let (inits, _) = p.to_send(Round::new(1)); // second round of sr 0
        assert!(inits.is_empty());
        let (inits, _) = p.to_send(Round::new(2)); // first round of sr 1
        assert_eq!(inits, vec!["m"]);
    }

    #[test]
    fn thresholds() {
        let p: EchoBroadcast<&'static str> = EchoBroadcast::new(7, 2);
        assert_eq!(p.accept_threshold(), 5);
        assert_eq!(p.join_threshold(), 3);
        // Saturation keeps degenerate configurations operational.
        let p: EchoBroadcast<&'static str> = EchoBroadcast::new(2, 1);
        assert_eq!(p.join_threshold(), 1);
    }
}
