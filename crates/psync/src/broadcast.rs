//! The authenticated broadcast of Proposition 6.
//!
//! A straightforward generalization of Srikanth–Toueg echo broadcast to
//! identifiers: to `Broadcast(m)` in superround `r`, send `⟨init m⟩` in the
//! first round of superround `r`; whoever receives it from identifier `i`
//! echoes `⟨echo m, r, i⟩` in every subsequent round; whoever has seen the
//! echo from `ℓ − 2t` distinct identifiers joins the echoing; whoever has
//! seen it from `ℓ − t` distinct identifiers performs `Accept(m, i)`.
//!
//! Guarantees (for `ℓ > 3t`, in the basic partially synchronous model):
//!
//! * **Correctness** — a broadcast by a correct process in superround
//!   `r ≥ T` is accepted by every correct process within superround `r`;
//! * **Unforgeability** — if every holder of identifier `i` is correct and
//!   none broadcast `m`, nobody accepts `(m, i)`: seeding an echo requires
//!   `ℓ − 2t > t` distinct identifiers, more than the Byzantine processes
//!   control;
//! * **Relay** — once any correct process accepts `(m, i)`, every correct
//!   process accepts it by superround `max(r + 1, T)` (echoes are
//!   retransmitted forever).

use std::collections::{BTreeMap, BTreeSet};

use homonym_core::{Id, Message, Round};

/// An `⟨echo m, r, i⟩` item: this sender vouches that identifier `src`
/// performed `Broadcast(payload)` in superround `sr`.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct EchoItem<M> {
    /// The broadcast payload `m`.
    pub payload: M,
    /// The superround `r` of the original `⟨init m⟩`.
    pub sr: u64,
    /// The identifier `i` the broadcast is attributed to.
    pub src: Id,
}

/// An `Accept(m, i)` event.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct Accept<M> {
    /// The accepted payload.
    pub payload: M,
    /// The identifier it is attributed to.
    pub src: Id,
    /// The superround of the original broadcast.
    pub sr: u64,
}

/// One process's view of the echo-broadcast layer.
///
/// The component is transport-agnostic: the owning protocol embeds the
/// items produced by [`EchoBroadcast::to_send`] in its per-round bundle and
/// feeds extracted items back through [`EchoBroadcast::observe`].
///
/// # Example
///
/// ```
/// use homonym_core::{Id, Round};
/// use homonym_psync::EchoBroadcast;
///
/// // ℓ = 4 identifiers, t = 1.
/// let mut bc: EchoBroadcast<&str> = EchoBroadcast::new(4, 1);
/// bc.broadcast("hello");
/// let (inits, _echoes) = bc.to_send(Round::new(0));
/// assert_eq!(inits, vec!["hello"]);
/// ```
#[derive(Clone, Debug)]
pub struct EchoBroadcast<M> {
    ell: usize,
    t: usize,
    /// Keys this process echoes in every round from now on.
    echoing: BTreeSet<(M, u64, Id)>,
    /// Distinct identifiers seen echoing each key.
    evidence: BTreeMap<(M, u64, Id), BTreeSet<Id>>,
    /// Keys already accepted (each accept fires once).
    accepted: BTreeSet<(M, u64, Id)>,
    /// Payloads queued for `⟨init⟩` at the next first-of-superround send.
    queue: Vec<M>,
}

impl<M: Message> EchoBroadcast<M> {
    /// Creates the layer for `ell` identifiers tolerating `t` faults.
    ///
    /// The thresholds are `ℓ − 2t` (echo join) and `ℓ − t` (accept); for
    /// `ℓ ≤ 3t` they lose their guarantees, but the component still
    /// operates — lower-bound experiments run it out of range on purpose.
    pub fn new(ell: usize, t: usize) -> Self {
        EchoBroadcast {
            ell,
            t,
            echoing: BTreeSet::new(),
            evidence: BTreeMap::new(),
            accepted: BTreeSet::new(),
            queue: Vec::new(),
        }
    }

    /// The accept threshold `ℓ − t` (saturating).
    pub fn accept_threshold(&self) -> usize {
        self.ell.saturating_sub(self.t)
    }

    /// The echo-join threshold `ℓ − 2t` (saturating, at least 1 so a
    /// forged zero-threshold can never arise).
    pub fn join_threshold(&self) -> usize {
        self.ell.saturating_sub(2 * self.t).max(1)
    }

    /// Queues `Broadcast(payload)`: the `⟨init⟩` goes out at the next
    /// first-of-superround send.
    pub fn broadcast(&mut self, payload: M) {
        self.queue.push(payload);
    }

    /// The items to embed in this round's bundle: `⟨init⟩`s (only in the
    /// first round of a superround) and all active echoes.
    pub fn to_send(&mut self, round: Round) -> (Vec<M>, Vec<EchoItem<M>>) {
        let inits = if round.is_first_of_superround() {
            std::mem::take(&mut self.queue)
        } else {
            Vec::new()
        };
        let echoes = self
            .echoing
            .iter()
            .map(|(payload, sr, src)| EchoItem {
                payload: payload.clone(),
                sr: *sr,
                src: *src,
            })
            .collect();
        (inits, echoes)
    }

    /// Feeds one round's received items: `inits` as `(sender identifier,
    /// payload)` pairs — only meaningful in the first round of a superround
    /// — and `echoes` as `(echoing identifier, item)` pairs. Returns the
    /// accepts newly performed.
    pub fn observe(
        &mut self,
        round: Round,
        inits: &[(Id, &M)],
        echoes: &[(Id, &EchoItem<M>)],
    ) -> Vec<Accept<M>> {
        // An ⟨init m⟩ from identifier i in the first round of superround r
        // starts our echoing of (m, r, i) from the next round on.
        if round.is_first_of_superround() {
            let sr = round.superround().index();
            for &(src, payload) in inits {
                self.echoing.insert((payload.clone(), sr, src));
            }
        }

        // Record echo evidence by distinct echoing identifier.
        for &(echoer, item) in echoes {
            self.evidence
                .entry((item.payload.clone(), item.sr, item.src))
                .or_default()
                .insert(echoer);
        }

        // Join echoing at ℓ − 2t, accept at ℓ − t.
        let join = self.join_threshold();
        let accept = self.accept_threshold();
        let mut accepts = Vec::new();
        for (key, supporters) in &self.evidence {
            if supporters.len() >= join {
                self.echoing.insert(key.clone());
            }
            if supporters.len() >= accept && self.accepted.insert(key.clone()) {
                accepts.push(Accept {
                    payload: key.0.clone(),
                    sr: key.1,
                    src: key.2,
                });
            }
        }
        accepts
    }

    /// Whether `(payload, src)` has been accepted (at any superround).
    pub fn has_accepted(&self, payload: &M, src: Id) -> bool {
        self.accepted
            .iter()
            .any(|(m, _, i)| m == payload && *i == src)
    }

    /// Number of keys currently being echoed (diagnostic; grows over the
    /// run because echoes are retransmitted forever, which the relay
    /// property requires).
    pub fn echoing_len(&self) -> usize {
        self.echoing.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A tiny synchronous network of `ell` correct processes (one per
    /// identifier) running only the broadcast layer.
    struct Net {
        procs: Vec<EchoBroadcast<&'static str>>,
        round: Round,
    }

    impl Net {
        fn new(ell: usize, t: usize) -> Self {
            Net {
                procs: (0..ell).map(|_| EchoBroadcast::new(ell, t)).collect(),
                round: Round::ZERO,
            }
        }

        /// Runs one round with full delivery plus adversarial extra items.
        fn step(
            &mut self,
            extra_inits: &[(Id, &'static str)],
            extra_echoes: &[(Id, EchoItem<&'static str>)],
        ) -> Vec<Vec<Accept<&'static str>>> {
            let r = self.round;
            let mut all_inits: Vec<(Id, &'static str)> = extra_inits.to_vec();
            let mut all_echoes: Vec<(Id, EchoItem<&'static str>)> = extra_echoes.to_vec();
            for (k, p) in self.procs.iter_mut().enumerate() {
                let (inits, echoes) = p.to_send(r);
                let id = Id::from_index(k);
                for m in inits {
                    all_inits.push((id, m));
                }
                for e in echoes {
                    all_echoes.push((id, e));
                }
            }
            let inits_ref: Vec<(Id, &&'static str)> =
                all_inits.iter().map(|(i, m)| (*i, m)).collect();
            let echoes_ref: Vec<(Id, &EchoItem<&'static str>)> =
                all_echoes.iter().map(|(i, e)| (*i, e)).collect();
            let out = self
                .procs
                .iter_mut()
                .map(|p| p.observe(r, &inits_ref, &echoes_ref))
                .collect();
            self.round = r.next();
            out
        }
    }

    #[test]
    fn correctness_accept_within_the_superround() {
        let mut net = Net::new(4, 1);
        net.procs[0].broadcast("m");
        let accepts = net.step(&[], &[]); // round 0: init flows
        assert!(accepts.iter().all(|a| a.is_empty()));
        let accepts = net.step(&[], &[]); // round 1: echoes flow, accept
        for per_proc in &accepts {
            assert_eq!(per_proc.len(), 1);
            assert_eq!(per_proc[0].payload, "m");
            assert_eq!(per_proc[0].src, Id::new(1));
            assert_eq!(per_proc[0].sr, 0);
        }
    }

    #[test]
    fn accept_fires_once() {
        let mut net = Net::new(4, 1);
        net.procs[0].broadcast("m");
        net.step(&[], &[]);
        net.step(&[], &[]);
        // Echoes keep flowing but the accept must not repeat.
        let accepts = net.step(&[], &[]);
        assert!(accepts.iter().all(|a| a.is_empty()));
        assert!(net.procs[2].has_accepted(&"m", Id::new(1)));
    }

    #[test]
    fn unforgeability_t_echoes_do_not_seed() {
        // t = 1 Byzantine identifier injects echoes for a message nobody
        // broadcast; ℓ − 2t = 2 > 1, so the echo never catches on.
        let mut net = Net::new(4, 1);
        let forged = EchoItem {
            payload: "forged",
            sr: 0,
            src: Id::new(2),
        };
        for _ in 0..6 {
            let accepts = net.step(&[], &[(Id::new(4), forged.clone())]);
            assert!(accepts.iter().all(|a| a.is_empty()));
        }
        assert!(!net.procs[0].has_accepted(&"forged", Id::new(2)));
    }

    #[test]
    fn byzantine_init_can_be_accepted_but_attributed_correctly() {
        // A Byzantine identifier CAN get its own broadcast accepted — the
        // broadcast only authenticates the identifier, it does not certify
        // correctness of the content.
        let mut net = Net::new(4, 1);
        let accepts = net.step(&[(Id::new(3), "lie")], &[]);
        assert!(accepts.iter().all(|a| a.is_empty()));
        let accepts = net.step(&[], &[]);
        for per_proc in &accepts {
            assert_eq!(per_proc.len(), 1);
            assert_eq!(per_proc[0].src, Id::new(3));
        }
    }

    #[test]
    fn relay_via_continued_echoes() {
        // Process 0 accepts thanks to echoes the others never saw (they
        // were "dropped"); once it echoes itself and the network heals,
        // everyone else accepts one superround later.
        let ell = 4;
        let t = 1;
        let mut lonely: EchoBroadcast<&'static str> = EchoBroadcast::new(ell, t);
        let item = EchoItem {
            payload: "m",
            sr: 0,
            src: Id::new(1),
        };
        // ℓ − t = 3 distinct identifiers echo to process 0 only.
        let echoes: Vec<(Id, EchoItem<&'static str>)> =
            (2..=4).map(|i| (Id::new(i), item.clone())).collect();
        let refs: Vec<(Id, &EchoItem<&'static str>)> =
            echoes.iter().map(|(i, e)| (*i, e)).collect();
        let accepts = lonely.observe(Round::new(1), &[], &refs);
        assert_eq!(accepts.len(), 1);
        // It now echoes the key forever — the relay mechanism.
        let (_, out) = lonely.to_send(Round::new(2));
        assert!(out.iter().any(|e| e.payload == "m" && e.src == Id::new(1)));
    }

    #[test]
    fn init_outside_first_round_of_superround_is_ignored() {
        let mut p: EchoBroadcast<&'static str> = EchoBroadcast::new(4, 1);
        // Round 1 is the second round of superround 0.
        let accepts = p.observe(Round::new(1), &[(Id::new(2), &"late")], &[]);
        assert!(accepts.is_empty());
        let (_, echoes) = p.to_send(Round::new(2));
        assert!(echoes.is_empty(), "late init must not start echoing");
    }

    #[test]
    fn queued_broadcast_waits_for_superround_start() {
        let mut p: EchoBroadcast<&'static str> = EchoBroadcast::new(4, 1);
        p.broadcast("m");
        let (inits, _) = p.to_send(Round::new(1)); // second round of sr 0
        assert!(inits.is_empty());
        let (inits, _) = p.to_send(Round::new(2)); // first round of sr 1
        assert_eq!(inits, vec!["m"]);
    }

    #[test]
    fn thresholds() {
        let p: EchoBroadcast<&'static str> = EchoBroadcast::new(7, 2);
        assert_eq!(p.accept_threshold(), 5);
        assert_eq!(p.join_threshold(), 3);
        // Saturation keeps degenerate configurations operational.
        let p: EchoBroadcast<&'static str> = EchoBroadcast::new(2, 1);
        assert_eq!(p.join_threshold(), 1);
    }
}
