//! The partially synchronous homonym agreement protocol (Figure 5).
//!
//! Phases of four superrounds (eight rounds). In phase `ph`, every holder
//! of identifier `(ph mod ℓ) + 1` is a co-leader:
//!
//! | superround | action |
//! |---|---|
//! | 1 | everyone `Broadcast(⟨propose V, ph⟩)` — `V` is the proper set, or the locked value |
//! | 2 | leaders pick a `vlock` supported by accepted proposals from `ℓ − t` identifiers and send `⟨lock vlock, ph⟩` |
//! | 3 | everyone who saw a leader lock with `ℓ − t` accepted support `Broadcast(⟨vote v, ph⟩)` |
//! | 4 | `ℓ − t` accepted votes ⇒ lock `(v, ph)` and send `⟨ack v, ph⟩`; leaders decide on `ℓ − t` acks; deciders relay `⟨decide v⟩`, and `t + 1` decide messages let anyone decide |
//!
//! The three departures from Dwork–Lynch–Stockmeyer that homonyms force
//! (Section 4.2): identifier quorums of size `ℓ − t` whose pairwise
//! intersections contain a *sole-correct* identifier (Lemma 7, needing
//! `2ℓ > n + 3t`); the voting superround, because co-leaders sharing the
//! leader identifier may push different lock values; and the decide relay,
//! because a correct process sharing its identifier with a Byzantine
//! process may never drive a phase itself.

use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

use homonym_core::codec::{DecodeError, Reader, WireDecode, WireEncode, Writer};
use homonym_core::{
    Domain, Id, Inbox, Protocol, ProtocolFactory, Recipients, Round, Value, WireSize,
};

use crate::broadcast::{EchoBroadcast, EchoItem};

/// Payloads sent through the authenticated broadcast layer.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Payload<V> {
    /// `⟨propose V, ph⟩` (Figure 5 line 8).
    Propose {
        /// The proposer's candidate set `V`.
        values: BTreeSet<V>,
        /// The phase.
        ph: u64,
    },
    /// `⟨vote v, ph⟩` (line 16).
    Vote {
        /// The value voted for.
        v: V,
        /// The phase.
        ph: u64,
    },
}

/// Items carried outside the broadcast layer (plain send-to-all). Shared
/// with the bounded variant (`crate::bounded`), which speaks the same
/// direct-item vocabulary.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub(crate) enum Direct<V> {
    /// `⟨lock v, ph⟩` from a phase leader (line 12).
    Lock {
        /// The leader's lock value.
        v: V,
        /// The phase.
        ph: u64,
    },
    /// `⟨ack v, ph⟩` (line 20).
    Ack {
        /// The acked value.
        v: V,
        /// The phase.
        ph: u64,
    },
    /// `⟨decide v⟩` (line 24).
    Decide {
        /// The decided value.
        v: V,
    },
}

/// The single wire message each process broadcasts per round: the
/// broadcast-layer items, the direct items, and the proper set that the
/// protocol appends to every message it sends.
///
/// The echo set sits behind its own [`Arc`], shared with the
/// [`EchoBroadcast`] layer that maintains it incrementally: rebuilding a
/// bundle because a direct item or an `⟨init⟩` changed costs one pointer
/// bump for the (typically large, forever-retransmitted) echo set, and a
/// receiver that already counted a pointer-identical set skips its scan.
/// `Arc` is transparent to `Debug`/`Ord`/`Eq`, so wire renderings,
/// orderings, and inbox dedup are exactly those of the plain set.
///
/// Alongside the four wire fields the bundle carries a *scan hint* — the
/// previous handed-out echo-set version and the items joined since
/// (`echoes == hint.0 ∪ hint.1`). The hint is **not** part of the wire
/// identity: it is excluded from `Debug`, `Eq`, and `Ord` (the manual
/// impls below), so traces, inbox dedup, and orderings are exactly those
/// of the four wire fields. It only lets a receiver that already counted
/// `hint.0` from this identifier scan the (small) `hint.1` instead of
/// the full set; a receiver that never saw `hint.0` ignores it.
#[derive(Clone)]
pub struct Bundle<V> {
    inits: BTreeSet<Payload<V>>,
    echoes: Arc<BTreeSet<EchoItem<Payload<V>>>>,
    directs: BTreeSet<Direct<V>>,
    proper: Arc<BTreeSet<V>>,
    /// `(prev, delta)` with `echoes == prev ∪ delta`; see above.
    hint: (EchoSet<V>, EchoSet<V>),
}

/// A shared echo-set handle (the type bundles and the broadcast layer
/// exchange).
type EchoSet<V> = Arc<BTreeSet<EchoItem<Payload<V>>>>;

impl<V> Bundle<V> {
    /// A bundle with a trivially consistent hint (`prev = ∅`,
    /// `delta = echoes`) — the constructor for hand-built bundles (tests,
    /// adversaries); engine-built bundles get the real incremental hint
    /// from the broadcast layer.
    #[cfg(test)]
    fn with_trivial_hint(
        inits: BTreeSet<Payload<V>>,
        echoes: EchoSet<V>,
        directs: BTreeSet<Direct<V>>,
        proper: Arc<BTreeSet<V>>,
    ) -> Self {
        let hint = (Arc::new(BTreeSet::new()), Arc::clone(&echoes));
        Bundle {
            inits,
            echoes,
            directs,
            proper,
            hint,
        }
    }

    /// The wire fields, as a tuple — the single definition of what
    /// participates in equality, ordering, and rendering.
    #[allow(clippy::type_complexity)]
    fn wire_fields(
        &self,
    ) -> (
        &BTreeSet<Payload<V>>,
        &Arc<BTreeSet<EchoItem<Payload<V>>>>,
        &BTreeSet<Direct<V>>,
        &Arc<BTreeSet<V>>,
    ) {
        (&self.inits, &self.echoes, &self.directs, &self.proper)
    }
}

impl<V: PartialEq> PartialEq for Bundle<V> {
    fn eq(&self, other: &Self) -> bool {
        self.wire_fields() == other.wire_fields()
    }
}

impl<V: Eq> Eq for Bundle<V> {}

impl<V: Ord> PartialOrd for Bundle<V> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl<V: Ord> Ord for Bundle<V> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.wire_fields().cmp(&other.wire_fields())
    }
}

impl<V: std::fmt::Debug> std::fmt::Debug for Bundle<V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Bundle")
            .field("inits", &self.inits)
            .field("echoes", &self.echoes)
            .field("directs", &self.directs)
            .field("proper", &self.proper)
            .finish()
    }
}

impl<V: Value + WireSize> WireSize for Payload<V> {
    fn wire_bits(&self) -> u64 {
        match self {
            Payload::Propose { values, ph } => values.wire_bits() + ph.wire_bits(),
            Payload::Vote { v, ph } => v.wire_bits() + ph.wire_bits(),
        }
    }
}

impl<V: Value + WireSize> WireSize for Direct<V> {
    fn wire_bits(&self) -> u64 {
        match self {
            Direct::Lock { v, ph } | Direct::Ack { v, ph } => v.wire_bits() + ph.wire_bits(),
            Direct::Decide { v } => v.wire_bits(),
        }
    }
}

impl<V: Value + WireSize> WireSize for Bundle<V> {
    fn wire_bits(&self) -> u64 {
        self.inits.wire_bits()
            + self.echoes.wire_bits()
            + self.directs.wire_bits()
            + self.proper.wire_bits()
    }
}

impl<V: Value + WireEncode> WireEncode for Payload<V> {
    fn encode(&self, w: &mut Writer) {
        match self {
            Payload::Propose { values, ph } => {
                w.put_u8(0);
                values.encode(w);
                ph.encode(w);
            }
            Payload::Vote { v, ph } => {
                w.put_u8(1);
                v.encode(w);
                ph.encode(w);
            }
        }
    }
}

impl<V: Value + WireDecode> WireDecode for Payload<V> {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        match r.take_u8()? {
            0 => Ok(Payload::Propose {
                values: BTreeSet::decode(r)?,
                ph: u64::decode(r)?,
            }),
            1 => Ok(Payload::Vote {
                v: V::decode(r)?,
                ph: u64::decode(r)?,
            }),
            tag => Err(DecodeError::BadTag {
                what: "Payload",
                tag,
            }),
        }
    }
}

impl<V: Value + WireEncode> WireEncode for Direct<V> {
    fn encode(&self, w: &mut Writer) {
        match self {
            Direct::Lock { v, ph } => {
                w.put_u8(0);
                v.encode(w);
                ph.encode(w);
            }
            Direct::Ack { v, ph } => {
                w.put_u8(1);
                v.encode(w);
                ph.encode(w);
            }
            Direct::Decide { v } => {
                w.put_u8(2);
                v.encode(w);
            }
        }
    }
}

impl<V: Value + WireDecode> WireDecode for Direct<V> {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        match r.take_u8()? {
            0 => Ok(Direct::Lock {
                v: V::decode(r)?,
                ph: u64::decode(r)?,
            }),
            1 => Ok(Direct::Ack {
                v: V::decode(r)?,
                ph: u64::decode(r)?,
            }),
            2 => Ok(Direct::Decide { v: V::decode(r)? }),
            tag => Err(DecodeError::BadTag {
                what: "Direct",
                tag,
            }),
        }
    }
}

/// Only the four wire fields are encoded — the scan hint is a local
/// optimization (`echoes == hint.0 ∪ hint.1` already), so a decoded
/// bundle reconstructs the trivially consistent hint and compares equal
/// to the original under the wire-field `Eq`.
impl<V: Value + WireEncode> WireEncode for Bundle<V> {
    fn encode(&self, w: &mut Writer) {
        self.inits.encode(w);
        self.echoes.encode(w);
        self.directs.encode(w);
        self.proper.encode(w);
    }
}

impl<V: Value + WireDecode> WireDecode for Bundle<V> {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        let inits = BTreeSet::decode(r)?;
        let echoes: EchoSet<V> = Arc::new(BTreeSet::decode(r)?);
        let directs = BTreeSet::decode(r)?;
        let proper = Arc::new(BTreeSet::decode(r)?);
        let hint = (Arc::new(BTreeSet::new()), Arc::clone(&echoes));
        Ok(Bundle {
            inits,
            echoes,
            directs,
            proper,
            hint,
        })
    }
}

impl<V: Value> Bundle<V> {
    /// The `⟨ack v, ph⟩` items this bundle carries, as `(value, phase)`
    /// pairs. Diagnostic: the Lemma 8 invariant tests scan execution
    /// traces for acks sent by correct processes.
    pub fn acks(&self) -> Vec<(&V, u64)> {
        self.directs
            .iter()
            .filter_map(|d| match d {
                Direct::Ack { v, ph } => Some((v, *ph)),
                _ => None,
            })
            .collect()
    }

    /// The `⟨lock v, ph⟩` leader requests this bundle carries.
    pub fn lock_requests(&self) -> Vec<(&V, u64)> {
        self.directs
            .iter()
            .filter_map(|d| match d {
                Direct::Lock { v, ph } => Some((v, *ph)),
                _ => None,
            })
            .collect()
    }

    /// The `⟨decide v⟩` relays this bundle carries.
    pub fn decide_relays(&self) -> Vec<&V> {
        self.directs
            .iter()
            .filter_map(|d| match d {
                Direct::Decide { v } => Some(v),
                _ => None,
            })
            .collect()
    }

    /// The proper set appended to this bundle.
    pub fn proper_view(&self) -> &BTreeSet<V> {
        &self.proper
    }
}

/// Position of a round inside its phase (eight rounds per phase). Shared
/// with the bounded variant, which runs the same phase skeleton.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) struct PhasePos {
    pub(crate) ph: u64,
    /// Round within the phase, `0..8`.
    pub(crate) w: u64,
}

pub(crate) fn phase_pos(round: Round) -> PhasePos {
    PhasePos {
        ph: round.index() / 8,
        w: round.index() % 8,
    }
}

/// One process of the Figure 5 protocol.
///
/// # Example
///
/// ```
/// use homonym_core::{Domain, Id, Protocol};
/// use homonym_psync::HomonymAgreement;
///
/// // n = 4, ℓ = 4, t = 1: 2ℓ = 8 > n + 3t = 7, solvable.
/// let p = HomonymAgreement::new(4, 4, 1, Domain::binary(), Id::new(2), true);
/// assert_eq!(p.id(), Id::new(2));
/// ```
#[derive(Clone, Debug)]
pub struct HomonymAgreement<V> {
    n: usize,
    ell: usize,
    t: usize,
    domain: Domain<V>,
    id: Id,

    /// The proper set, behind an [`Arc`] shared with every bundle built
    /// from it — appending it to a bundle is a pointer bump, and
    /// clone-on-write only fires on the (rare) round it actually grows.
    proper: Arc<BTreeSet<V>>,
    /// `locks`: pairs `(v, ph)`.
    locks: BTreeSet<(V, u64)>,
    decision: Option<V>,

    bcast: EchoBroadcast<Payload<V>>,
    /// Accepted proposals: phase → identifier → the candidate sets accepted
    /// from it.
    propose_acc: BTreeMap<u64, BTreeMap<Id, BTreeSet<BTreeSet<V>>>>,
    /// Accepted votes: phase → value → identifiers accepted from.
    vote_acc: BTreeMap<u64, BTreeMap<V, BTreeSet<Id>>>,
    /// Lock values received from the leader identifier, per phase.
    leader_locks: BTreeMap<u64, BTreeSet<V>>,
    /// The lock value this process sent as a leader, per phase (line 21
    /// compares acks against it).
    my_lock: BTreeMap<u64, V>,
    /// Ablation switch: when false, the vote superround is skipped and a
    /// leader lock with quorum-supported proposals is acked directly (see
    /// [`AgreementFactory::ablated_without_votes`]).
    vote_superround: bool,

    /// The last bundle built, with the state fingerprints that decide
    /// whether it can be re-sent as-is (see
    /// [`HomonymAgreement::build_or_reuse`]).
    send_cache: Option<SendCache<V>>,
    /// Per sender identifier: the echo sets fully counted last round. A
    /// pointer-identical re-delivery (the sender's echo set did not grow,
    /// even if its directs/inits/proper did) skips the O(echoes) re-scan
    /// — echo evidence is cumulative and idempotent, so the skip is
    /// unobservable.
    seen_echoes: BTreeMap<Id, Vec<Arc<BTreeSet<EchoItem<Payload<V>>>>>>,
}

/// The cached outgoing bundle and the fingerprints of the state it was
/// built from.
#[derive(Clone, Debug)]
struct SendCache<V> {
    bundle: Arc<Bundle<V>>,
    /// [`EchoBroadcast`] generation at build time (echo set unchanged ⇔
    /// generations equal).
    generation: u64,
    /// Proper-set size at build time (the proper set only grows).
    proper_len: usize,
    /// Whether the bundle may be re-sent at all: only bundles carrying
    /// no `⟨init⟩`s and no direct items are round-agnostic.
    reusable: bool,
}

impl<V: Value> HomonymAgreement<V> {
    /// Creates the automaton for a process holding `id` proposing `input`
    /// in a system of `n` processes, `ell` identifiers, and at most `t`
    /// Byzantine processes.
    ///
    /// The protocol is correct when `2ℓ > n + 3t` and `n > 3t`; it can be
    /// instantiated outside that range (the Figure 4 experiment does).
    ///
    /// # Panics
    ///
    /// Panics if `input` is outside `domain`, or `ell < t`.
    pub fn new(n: usize, ell: usize, t: usize, domain: Domain<V>, id: Id, input: V) -> Self {
        assert!(domain.contains(&input), "input must belong to the domain");
        assert!(ell >= t, "quorum ell - t requires ell >= t");
        HomonymAgreement {
            n,
            ell,
            t,
            id,
            proper: Arc::new(BTreeSet::from([input])),
            locks: BTreeSet::new(),
            decision: None,
            bcast: EchoBroadcast::new(ell, t),
            propose_acc: BTreeMap::new(),
            vote_acc: BTreeMap::new(),
            leader_locks: BTreeMap::new(),
            my_lock: BTreeMap::new(),
            vote_superround: true,
            send_cache: None,
            seen_echoes: BTreeMap::new(),
            domain,
        }
    }

    /// The identifier quorum size `ℓ − t`.
    pub fn quorum(&self) -> usize {
        self.ell - self.t
    }

    /// The `(n, ℓ, t)` parameters this instance was built for.
    pub fn params(&self) -> (usize, usize, usize) {
        (self.n, self.ell, self.t)
    }

    /// The proper set (diagnostic).
    pub fn proper(&self) -> &BTreeSet<V> {
        &self.proper
    }

    /// The lock set (diagnostic).
    pub fn locks(&self) -> &BTreeSet<(V, u64)> {
        &self.locks
    }

    /// Whether this process co-leads phase `ph`.
    fn is_leader(&self, ph: u64) -> bool {
        Id::phase_leader(ph, self.ell) == self.id
    }

    /// Line 7: the candidate set `V` — proper values not excluded by a
    /// lock on a different value.
    fn candidate_set(&self) -> BTreeSet<V> {
        self.proper
            .iter()
            .filter(|v| !self.locks.iter().any(|(w, _)| w != *v))
            .cloned()
            .collect()
    }

    /// The identifiers whose accepted proposals for `ph` contain `v`.
    fn propose_support(&self, ph: u64, v: &V) -> usize {
        self.propose_acc
            .get(&ph)
            .map(|per_id| {
                per_id
                    .values()
                    .filter(|sets| sets.iter().any(|s| s.contains(v)))
                    .count()
            })
            .unwrap_or(0)
    }

    /// The values with accepted-proposal support from at least `ℓ − t`
    /// identifiers in phase `ph`, ascending.
    fn quorum_supported(&self, ph: u64) -> Vec<V> {
        self.domain
            .values()
            .iter()
            .filter(|v| self.propose_support(ph, v) >= self.quorum())
            .cloned()
            .collect()
    }

    /// The identifiers whose `⟨vote v, ph⟩` we accepted.
    fn vote_support(&self, ph: u64, v: &V) -> usize {
        self.vote_acc
            .get(&ph)
            .and_then(|per_v| per_v.get(v))
            .map(BTreeSet::len)
            .unwrap_or(0)
    }

    fn decide(&mut self, v: V) {
        if self.decision.is_none() {
            self.decision = Some(v);
        }
    }

    /// Routes newly accepted broadcast payloads into the evidence tables.
    fn route_accepts(&mut self, accepts: Vec<crate::broadcast::Accept<Payload<V>>>) {
        for a in accepts {
            match a.payload {
                Payload::Propose { values, ph } => {
                    self.propose_acc
                        .entry(ph)
                        .or_default()
                        .entry(a.src)
                        .or_default()
                        .insert(values);
                }
                Payload::Vote { v, ph } => {
                    self.vote_acc
                        .entry(ph)
                        .or_default()
                        .entry(v)
                        .or_default()
                        .insert(a.src);
                }
            }
        }
    }

    /// Lines 27–30: release locks overtaken by `ℓ − t` accepted votes for a
    /// different value in a later phase.
    fn release_locks(&mut self) {
        let quorum = self.quorum();
        let stale: Vec<(V, u64)> = self
            .locks
            .iter()
            .filter(|(v1, ph1)| {
                self.vote_acc.iter().any(|(&ph2, per_v)| {
                    ph2 > *ph1
                        && per_v
                            .iter()
                            .any(|(v2, ids)| v2 != v1 && ids.len() >= quorum)
                })
            })
            .cloned()
            .collect();
        for pair in stale {
            self.locks.remove(&pair);
        }
    }

    /// A conservative bound on rounds to decision once the network is
    /// stable: every identifier leads within `ℓ` phases, plus one phase of
    /// slack, at eight rounds per phase.
    pub fn round_bound(n: usize, ell: usize) -> u64 {
        let _ = n;
        8 * (ell as u64 + 2)
    }

    /// This round's bundle: a shared handle on the cached one when
    /// nothing it carries changed since it was built (no directs, no due
    /// `⟨init⟩`s, echo set and proper set untouched), a fresh build
    /// otherwise. Reuse is the common case — mid-phase rounds only
    /// retransmit the standing echo set — and it is what keeps the
    /// steady-state round at zero payload clones (`psync_clone_budget`
    /// pins this).
    fn build_or_reuse(&mut self, round: Round, directs: BTreeSet<Direct<V>>) -> Arc<Bundle<V>> {
        if directs.is_empty() && !self.bcast.init_due(round) {
            if let Some(cache) = &self.send_cache {
                if cache.reusable
                    && cache.generation == self.bcast.generation()
                    && cache.proper_len == self.proper.len()
                {
                    return Arc::clone(&cache.bundle);
                }
            }
        }
        let (inits, echoes) = self.bcast.shared_to_send(round);
        let hint = self.bcast.wire_delta();
        let reusable = inits.is_empty() && directs.is_empty();
        let bundle = Arc::new(Bundle {
            inits: inits.into_iter().collect(),
            echoes,
            directs,
            proper: Arc::clone(&self.proper),
            hint,
        });
        self.send_cache = Some(SendCache {
            bundle: Arc::clone(&bundle),
            generation: self.bcast.generation(),
            proper_len: self.proper.len(),
            reusable,
        });
        bundle
    }
}

impl<V: Value> Protocol for HomonymAgreement<V> {
    type Msg = Bundle<V>;
    type Value = V;

    fn id(&self) -> Id {
        self.id
    }

    fn send(&mut self, round: Round) -> Vec<(Recipients, Bundle<V>)> {
        self.send_shared(round)
            .into_iter()
            .map(|(recipients, bundle)| (recipients, (*bundle).clone()))
            .collect()
    }

    fn send_shared(&mut self, round: Round) -> Vec<(Recipients, Arc<Bundle<V>>)> {
        let PhasePos { ph, w } = phase_pos(round);
        let mut directs = BTreeSet::new();

        match w {
            0 => {
                // Superround 1: Broadcast(⟨propose V, ph⟩).
                let values = self.candidate_set();
                self.bcast.broadcast(Payload::Propose { values, ph });
            }
            2 if self.is_leader(ph) => {
                // Round 1 of superround 2: leaders send ⟨lock vlock, ph⟩.
                if let Some(vlock) = self.quorum_supported(ph).into_iter().next() {
                    self.my_lock.insert(ph, vlock.clone());
                    directs.insert(Direct::Lock { v: vlock, ph });
                }
            }
            4 if self.vote_superround => {
                // Superround 3: vote for a leader lock with quorum support.
                let candidates: Vec<V> = self
                    .leader_locks
                    .get(&ph)
                    .map(|locks| {
                        locks
                            .iter()
                            .filter(|v| self.propose_support(ph, v) >= self.quorum())
                            .cloned()
                            .collect()
                    })
                    .unwrap_or_default();
                if let Some(v) = candidates.into_iter().next() {
                    self.bcast.broadcast(Payload::Vote { v, ph });
                }
            }
            6 => {
                // Round 1 of superround 4: lock and ack.
                let quorum = self.quorum();
                let choice = if self.vote_superround {
                    self.domain
                        .values()
                        .iter()
                        .find(|v| self.vote_support(ph, v) >= quorum)
                        .cloned()
                } else {
                    // Ablated: ack whichever leader lock has quorum-supported
                    // proposals — different correct processes may have seen
                    // different leader locks, which is exactly the hazard the
                    // vote superround exists to rule out (Lemma 8).
                    self.leader_locks
                        .get(&ph)
                        .into_iter()
                        .flatten()
                        .find(|v| self.propose_support(ph, v) >= quorum)
                        .cloned()
                };
                if let Some(v) = choice {
                    // Line 19: add (v, ph), remove any other pair (v, *).
                    let stale: Vec<(V, u64)> = self
                        .locks
                        .iter()
                        .filter(|(w_, _)| *w_ == v)
                        .cloned()
                        .collect();
                    for pair in stale {
                        self.locks.remove(&pair);
                    }
                    self.locks.insert((v.clone(), ph));
                    directs.insert(Direct::Ack { v, ph });
                }
            }
            7 => {
                // Round 2 of superround 4: deciders relay.
                if let Some(v) = &self.decision {
                    directs.insert(Direct::Decide { v: v.clone() });
                }
            }
            _ => {}
        }

        vec![(Recipients::All, self.build_or_reuse(round, directs))]
    }

    fn receive(&mut self, round: Round, inbox: &Inbox<Bundle<V>>) {
        let PhasePos { ph, w } = phase_pos(round);

        // Broadcast layer: extract init/echo items from every bundle.
        // Echo evidence is cumulative and idempotent per (identifier,
        // item), so items already counted from this identifier need not
        // be re-fed: an echo set re-delivered as the *same* `Arc` (the
        // sender's standing set, unchanged even if its directs/inits/
        // proper moved) is skipped outright, and a changed set is
        // narrowed to its difference against a set previously counted
        // from the same identifier (sets only grow, so the difference is
        // the handful of newly joined items). Inits are round-dependent
        // (the superround is the receiver's), so they are always
        // extracted.
        let mut inits: Vec<(Id, &Payload<V>)> = Vec::new();
        let mut echoes: Vec<(Id, &EchoItem<Payload<V>>)> = Vec::new();
        let mut seen_now: BTreeMap<Id, Vec<Arc<BTreeSet<EchoItem<Payload<V>>>>>> = BTreeMap::new();
        for (src, bundle, _) in inbox.iter() {
            for p in &bundle.inits {
                inits.push((src, p));
            }
            let prev = self.seen_echoes.get(&src);
            let counted =
                prev.is_some_and(|sets| sets.iter().any(|e| Arc::ptr_eq(e, &bundle.echoes)));
            if !counted {
                let hinted =
                    prev.is_some_and(|sets| sets.iter().any(|e| Arc::ptr_eq(e, &bundle.hint.0)));
                if hinted {
                    // The sender's previous version was fully counted
                    // from this identifier: only the joined items are
                    // new.
                    for e in bundle.hint.1.iter() {
                        echoes.push((src, e));
                    }
                } else {
                    match prev.and_then(|sets| sets.first()) {
                        Some(baseline) => {
                            for e in bundle.echoes.difference(baseline) {
                                echoes.push((src, e));
                            }
                        }
                        None => {
                            for e in bundle.echoes.iter() {
                                echoes.push((src, e));
                            }
                        }
                    }
                }
            }
            seen_now
                .entry(src)
                .or_default()
                .push(Arc::clone(&bundle.echoes));
        }
        let accepts = self.bcast.observe(round, &inits, &echoes);
        self.route_accepts(accepts);
        // Identifiers silent this round (drops, partitions) keep their
        // last counted sets — counting is cumulative, so an old baseline
        // stays a valid shortcut when they reappear.
        for (src, sets) in std::mem::take(&mut self.seen_echoes) {
            seen_now.entry(src).or_insert(sets);
        }
        self.seen_echoes = seen_now;

        // Proper-set rules (innumerate: count distinct identifiers).
        let proper_views: Vec<(Id, &BTreeSet<V>)> =
            inbox.iter().map(|(src, b, _)| (src, &*b.proper)).collect();
        self.update_proper(&proper_views);

        // Direct items.
        let leader = Id::phase_leader(ph, self.ell);
        if (2..=5).contains(&w) {
            // Record leader lock messages for this phase (correct
            // leaders send them in round 2; accept them any time before
            // the vote is cast).
            for (src, bundle, _) in inbox.iter() {
                if src != leader {
                    continue;
                }
                for d in &bundle.directs {
                    if let Direct::Lock { v, ph: lph } = d {
                        if *lph == ph && self.domain.contains(v) {
                            self.leader_locks.entry(ph).or_default().insert(v.clone());
                        }
                    }
                }
            }
        }

        if w == 6 {
            // Line 21: leaders decide on ℓ − t acks for their lock value,
            // received in this round.
            if self.is_leader(ph) && self.decision.is_none() {
                if let Some(vlock) = self.my_lock.get(&ph).cloned() {
                    let ack_ids: BTreeSet<Id> = inbox
                        .ids_where(|b| {
                            b.directs
                                .iter()
                                .any(|d| matches!(d, Direct::Ack { v, ph: aph } if *v == vlock && *aph == ph))
                        })
                        .collect();
                    if ack_ids.len() >= self.quorum() {
                        self.decide(vlock);
                    }
                }
            }
        }

        if w == 7 {
            // Lines 25–26: t + 1 identifiers relaying ⟨decide v⟩ this round.
            if self.decision.is_none() {
                for v in self.domain.values() {
                    let ids: BTreeSet<Id> = inbox
                        .ids_where(|b| {
                            b.directs
                                .iter()
                                .any(|d| matches!(d, Direct::Decide { v: dv } if dv == v))
                        })
                        .collect();
                    if ids.len() >= self.t + 1 {
                        self.decide(v.clone());
                        break;
                    }
                }
            }
            // Lines 27–30: end of phase, release overtaken locks.
            self.release_locks();
        }
    }

    fn decision(&self) -> Option<V> {
        self.decision.clone()
    }

    fn state_bits(&self) -> u64 {
        let mut bits = self.bcast.state_bits();
        bits += self.proper.len() as u64 * 64;
        bits += self.locks.len() as u64 * 128;
        for per_id in self.propose_acc.values() {
            for sets in per_id.values() {
                bits += 128;
                bits += sets.iter().map(|s| 64 + s.len() as u64 * 64).sum::<u64>();
            }
        }
        for per_v in self.vote_acc.values() {
            for ids in per_v.values() {
                bits += 64 + ids.len() as u64 * 16;
            }
        }
        bits += self
            .leader_locks
            .values()
            .map(|s| 64 + s.len() as u64 * 64)
            .sum::<u64>();
        bits += self.my_lock.len() as u64 * 128;
        bits += self
            .seen_echoes
            .values()
            .map(|sets| sets.len() as u64 * 64)
            .sum::<u64>();
        bits
    }
}

impl<V: Value> HomonymAgreement<V> {
    /// Applies the Section 4.2 proper-set rules for one round's messages
    /// (innumerate: by distinct identifiers).
    fn update_proper(&mut self, views: &[(Id, &BTreeSet<V>)]) {
        let reporter_ids: BTreeSet<Id> = views.iter().map(|&(i, _)| i).collect();
        let mut reached = false;
        for v in self.domain.values() {
            let support = views
                .iter()
                .filter(|(_, s)| s.contains(v))
                .map(|&(i, _)| i)
                .collect::<BTreeSet<Id>>()
                .len();
            if support >= self.t + 1 {
                // Guarded insert: a steady-state round re-confirms values
                // that are already proper, and must not clone them again.
                if !self.proper.contains(v) {
                    Arc::make_mut(&mut self.proper).insert(v.clone());
                }
                reached = true;
            }
        }
        if !reached && reporter_ids.len() >= 2 * self.t + 1 {
            for v in self.domain.values() {
                if !self.proper.contains(v) {
                    Arc::make_mut(&mut self.proper).insert(v.clone());
                }
            }
        }
    }
}

/// A [`ProtocolFactory`] for [`HomonymAgreement`] processes.
#[derive(Clone, Debug)]
pub struct AgreementFactory<V> {
    n: usize,
    ell: usize,
    t: usize,
    domain: Domain<V>,
    vote_superround: bool,
}

impl<V: Value> AgreementFactory<V> {
    /// Creates a factory for a system of `n` processes, `ell` identifiers,
    /// fault bound `t`, over `domain`.
    pub fn new(n: usize, ell: usize, t: usize, domain: Domain<V>) -> Self {
        AgreementFactory {
            n,
            ell,
            t,
            domain,
            vote_superround: true,
        }
    }

    /// **Ablation**: builds the protocol *without* the vote superround —
    /// a leader lock with quorum-supported proposals is acked directly.
    ///
    /// The paper adds the votes because, with homonyms, a phase can have
    /// *several co-leaders* (or a Byzantine leader) pushing different lock
    /// values; without a voting step two correct processes can ack
    /// different values in the same phase, which breaks the invariant of
    /// Lemma 8 that all safety rests on. The `ablation_vote_superround`
    /// tests construct exactly that divergence.
    pub fn ablated_without_votes(n: usize, ell: usize, t: usize, domain: Domain<V>) -> Self {
        AgreementFactory {
            n,
            ell,
            t,
            domain,
            vote_superround: false,
        }
    }

    /// Conservative rounds-to-decision after stabilization (see
    /// [`HomonymAgreement::round_bound`]).
    pub fn round_bound(&self) -> u64 {
        HomonymAgreement::<V>::round_bound(self.n, self.ell)
    }
}

impl<V: Value> ProtocolFactory for AgreementFactory<V> {
    type P = HomonymAgreement<V>;

    fn spawn(&self, id: Id, input: V) -> HomonymAgreement<V> {
        let mut p = HomonymAgreement::new(self.n, self.ell, self.t, self.domain.clone(), id, input);
        p.vote_superround = self.vote_superround;
        p
    }
}

/// The classical Dwork–Lynch–Stockmeyer special case: unique identifiers
/// (`ℓ = n`), where the quorums degenerate to the familiar `n − t`
/// process quorums. Used as the baseline in the benches.
pub fn classic_dls_factory<V: Value>(n: usize, t: usize, domain: Domain<V>) -> AgreementFactory<V> {
    AgreementFactory::new(n, n, t, domain)
}

#[cfg(test)]
mod tests {
    use super::*;
    use homonym_core::{Counting, Envelope};

    fn proc(n: usize, ell: usize, t: usize, id: u16, input: bool) -> HomonymAgreement<bool> {
        HomonymAgreement::new(n, ell, t, Domain::binary(), Id::new(id), input)
    }

    /// Runs a fully synchronous, failure-free network of the protocol and
    /// returns per-process decisions after `rounds` rounds.
    fn run_clean(
        n: usize,
        ell: usize,
        t: usize,
        assignment: &[u16],
        inputs: &[bool],
        rounds: u64,
    ) -> Vec<Option<bool>> {
        let mut procs: Vec<HomonymAgreement<bool>> = (0..n)
            .map(|k| proc(n, ell, t, assignment[k], inputs[k]))
            .collect();
        for r in 0..rounds {
            let round = Round::new(r);
            let outs: Vec<Bundle<bool>> = procs
                .iter_mut()
                .map(|p| p.send(round).remove(0).1)
                .collect();
            let envs: Vec<Envelope<Bundle<bool>>> = outs
                .iter()
                .enumerate()
                .map(|(k, b)| Envelope {
                    src: Id::new(assignment[k]),
                    msg: b.clone(),
                })
                .collect();
            let inbox = Inbox::collect(envs, Counting::Innumerate);
            for p in &mut procs {
                p.receive(round, &inbox);
            }
        }
        procs.iter().map(|p| p.decision()).collect()
    }

    #[test]
    fn unanimous_clean_run_decides_input() {
        // n = 4, ℓ = 4, t = 1 (solvable: 8 > 7).
        for v in [false, true] {
            let decisions = run_clean(4, 4, 1, &[1, 2, 3, 4], &[v; 4], 8 * 6);
            for d in &decisions {
                assert_eq!(*d, Some(v), "all must decide the unanimous input");
            }
        }
    }

    #[test]
    fn split_inputs_agree() {
        let decisions = run_clean(4, 4, 1, &[1, 2, 3, 4], &[false, true, false, true], 8 * 6);
        assert!(decisions[0].is_some());
        assert!(
            decisions.iter().all(|d| *d == decisions[0]),
            "{decisions:?}"
        );
    }

    #[test]
    fn homonyms_with_same_input_decide() {
        // n = 5, ℓ = 4, t = 0 edge: homonym group {1, 1}.
        let decisions = run_clean(5, 4, 0, &[1, 1, 2, 3, 4], &[true; 5], 8 * 6);
        for d in &decisions {
            assert_eq!(*d, Some(true));
        }
    }

    #[test]
    fn homonyms_with_different_inputs_still_agree() {
        // n = 7, ℓ = 6, t = 1: 2ℓ = 12 > n + 3t = 10. Identifier 1 held by
        // two correct processes with different inputs — the paper's
        // motivating hazard.
        let decisions = run_clean(
            7,
            6,
            1,
            &[1, 1, 2, 3, 4, 5, 6],
            &[false, true, true, false, true, false, true],
            8 * 8,
        );
        assert!(decisions[0].is_some(), "{decisions:?}");
        assert!(
            decisions.iter().all(|d| *d == decisions[0]),
            "{decisions:?}"
        );
    }

    #[test]
    fn candidate_set_respects_locks() {
        let mut p = proc(4, 4, 1, 1, true);
        assert_eq!(p.candidate_set(), BTreeSet::from([true]));
        Arc::make_mut(&mut p.proper).insert(false);
        assert_eq!(p.candidate_set(), BTreeSet::from([false, true]));
        p.locks.insert((true, 3));
        // A lock on `true` excludes every other value.
        assert_eq!(p.candidate_set(), BTreeSet::from([true]));
    }

    #[test]
    fn leader_rotation() {
        let p = proc(4, 4, 1, 1, true);
        assert!(p.is_leader(0));
        assert!(!p.is_leader(1));
        assert!(p.is_leader(4));
    }

    #[test]
    fn decision_is_sticky() {
        let mut p = proc(4, 4, 1, 1, true);
        p.decide(true);
        p.decide(false);
        assert_eq!(p.decision(), Some(true));
    }

    #[test]
    fn release_locks_requires_later_phase_and_other_value() {
        let mut p = proc(4, 4, 1, 1, true);
        p.locks.insert((true, 2));
        // Quorum (ℓ − t = 3) of votes for the SAME value: no release.
        p.vote_acc
            .entry(5)
            .or_default()
            .insert(true, [Id::new(1), Id::new(2), Id::new(3)].into());
        p.release_locks();
        assert!(p.locks.contains(&(true, 2)));
        // Quorum for a different value in a later phase: release.
        p.vote_acc
            .entry(6)
            .or_default()
            .insert(false, [Id::new(1), Id::new(2), Id::new(3)].into());
        p.release_locks();
        assert!(p.locks.is_empty());
        // An EARLIER phase must not release.
        p.locks.insert((true, 9));
        p.release_locks();
        assert!(p.locks.contains(&(true, 9)));
    }

    #[test]
    fn phase_pos_mapping() {
        assert_eq!(phase_pos(Round::new(0)), PhasePos { ph: 0, w: 0 });
        assert_eq!(phase_pos(Round::new(7)), PhasePos { ph: 0, w: 7 });
        assert_eq!(phase_pos(Round::new(8)), PhasePos { ph: 1, w: 0 });
        assert_eq!(phase_pos(Round::new(14)), PhasePos { ph: 1, w: 6 });
    }

    #[test]
    #[should_panic(expected = "domain")]
    fn out_of_domain_input_rejected() {
        let _ = HomonymAgreement::new(4, 4, 1, Domain::new(vec![1u32, 2]), Id::new(1), 9);
    }

    // ----- ablation: the vote superround (Section 4.2, novelty 2) -----

    /// Builds the crafted deliveries that give a process accepted
    /// proposals for BOTH values from every identifier in phase 0, then a
    /// single leader lock for `lock_value`.
    fn feed_phase0_with_leader_lock(p: &mut HomonymAgreement<bool>, lock_value: bool) {
        let both: Arc<BTreeSet<bool>> = Arc::new([false, true].into());
        let payload = Payload::Propose {
            values: (*both).clone(),
            ph: 0,
        };

        // Round 0: every identifier inits ⟨propose {0,1}, 0⟩.
        let _ = p.send(Round::new(0));
        let round0: Vec<Envelope<Bundle<bool>>> = (1..=4u16)
            .map(|j| Envelope {
                src: Id::new(j),
                msg: Bundle::with_trivial_hint(
                    BTreeSet::from([payload.clone()]),
                    Arc::new(BTreeSet::new()),
                    BTreeSet::new(),
                    both.clone(),
                ),
            })
            .collect();
        p.receive(Round::new(0), &Inbox::collect(round0, Counting::Innumerate));

        // Round 1: every identifier echoes every identifier's init — all
        // four broadcasts reach the accept threshold ℓ − t = 3.
        let _ = p.send(Round::new(1));
        let round1: Vec<Envelope<Bundle<bool>>> = (1..=4u16)
            .map(|j| Envelope {
                src: Id::new(j),
                msg: Bundle::with_trivial_hint(
                    BTreeSet::new(),
                    Arc::new(
                        (1..=4u16)
                            .map(|src| {
                                crate::broadcast::EchoItem::new(payload.clone(), 0, Id::new(src))
                            })
                            .collect(),
                    ),
                    BTreeSet::new(),
                    both.clone(),
                ),
            })
            .collect();
        p.receive(Round::new(1), &Inbox::collect(round1, Counting::Innumerate));
        assert!(p.propose_support(0, &false) >= p.quorum());
        assert!(p.propose_support(0, &true) >= p.quorum());

        // Round 2: the (Byzantine or co-led) leader identifier 1 sends one
        // lock value to this process.
        let _ = p.send(Round::new(2));
        let lock = Envelope {
            src: Id::new(1),
            msg: Bundle::with_trivial_hint(
                BTreeSet::new(),
                Arc::new(BTreeSet::new()),
                BTreeSet::from([Direct::Lock {
                    v: lock_value,
                    ph: 0,
                }]),
                both.clone(),
            ),
        };
        p.receive(Round::new(2), &Inbox::collect([lock], Counting::Innumerate));

        // Rounds 3–5: quiet.
        for r in 3..6u64 {
            let _ = p.send(Round::new(r));
            p.receive(Round::new(r), &Inbox::empty());
        }
    }

    fn acks_sent_at_w6(p: &mut HomonymAgreement<bool>) -> Vec<(bool, u64)> {
        let bundle = p.send(Round::new(6)).remove(0).1;
        bundle
            .directs
            .iter()
            .filter_map(|d| match d {
                Direct::Ack { v, ph } => Some((*v, *ph)),
                _ => None,
            })
            .collect()
    }

    /// Without the vote superround, two correct processes that saw
    /// different leader locks (Byzantine leader, or two correct co-leaders
    /// under message loss) ack DIFFERENT values in the same phase — the
    /// exact situation Lemma 8 proves impossible for the real protocol.
    #[test]
    fn ablation_without_votes_breaks_lemma8() {
        let ablated = AgreementFactory::ablated_without_votes(4, 4, 1, Domain::binary());
        let mut p2 = ablated.spawn(Id::new(2), false);
        let mut p3 = ablated.spawn(Id::new(3), true);
        feed_phase0_with_leader_lock(&mut p2, false);
        feed_phase0_with_leader_lock(&mut p3, true);
        let acks2 = acks_sent_at_w6(&mut p2);
        let acks3 = acks_sent_at_w6(&mut p3);
        assert_eq!(acks2, vec![(false, 0)]);
        assert_eq!(acks3, vec![(true, 0)]);
        // Conflicting correct acks in the same phase: Lemma 8 is dead, and
        // with it the agreement proof.
    }

    /// The real protocol under the *same* deliveries never acks at all:
    /// acking requires ℓ − t accepted votes, and the vote quorums of any
    /// two values intersect in a sole-correct identifier (Lemma 7).
    #[test]
    fn real_protocol_survives_the_same_deliveries() {
        let real = AgreementFactory::new(4, 4, 1, Domain::binary());
        let mut p2 = real.spawn(Id::new(2), false);
        let mut p3 = real.spawn(Id::new(3), true);
        feed_phase0_with_leader_lock(&mut p2, false);
        feed_phase0_with_leader_lock(&mut p3, true);
        assert!(acks_sent_at_w6(&mut p2).is_empty());
        assert!(acks_sent_at_w6(&mut p3).is_empty());
    }

    /// On clean runs the ablated protocol still decides — the ablation
    /// only removes protection against divergent leader locks, so the
    /// difference is invisible until an adversary (or losses) exploit it.
    #[test]
    fn ablated_protocol_decides_on_clean_runs() {
        let decisions = {
            let factory = AgreementFactory::ablated_without_votes(4, 4, 1, Domain::binary());
            let mut procs: Vec<HomonymAgreement<bool>> = (1..=4u16)
                .map(|i| factory.spawn(Id::new(i), true))
                .collect();
            for r in 0..8 * 4 {
                let round = Round::new(r);
                let outs: Vec<Bundle<bool>> = procs
                    .iter_mut()
                    .map(|p| p.send(round).remove(0).1)
                    .collect();
                let envs: Vec<Envelope<Bundle<bool>>> = outs
                    .iter()
                    .enumerate()
                    .map(|(k, b)| Envelope {
                        src: Id::new(k as u16 + 1),
                        msg: b.clone(),
                    })
                    .collect();
                let inbox = Inbox::collect(envs, Counting::Innumerate);
                for p in &mut procs {
                    p.receive(round, &inbox);
                }
            }
            procs.iter().map(|p| p.decision()).collect::<Vec<_>>()
        };
        for d in &decisions {
            assert_eq!(*d, Some(true), "{decisions:?}");
        }
    }
}
