//! The partially synchronous agreement protocol for numerate processes
//! against restricted Byzantine senders (Figure 7, Appendix A.3.2).
//!
//! Same phase skeleton as Figure 5 — four superrounds per phase:
//! propose / lock / vote / ack — but every quorum is a **witness count**
//! over the multiplicity broadcast of Figure 6 rather than an identifier
//! count. The number of witnesses a process has for `(m, r)` is the sum
//! over identifiers `i` of the `αᵢ` in its `Accept(i, αᵢ, m, r)` actions.
//!
//! Safety rests on `n > 3t` (witness sets of size `n − t` pairwise
//! intersect in a correct broadcaster — Lemma 31); liveness rests on
//! `ℓ > t`: some identifier is held only by correct processes, and when
//! its holders lead a phase after stabilization every correct process
//! decides (Proposition 40). This is why `t + 1` identifiers suffice here,
//! versus `> (n + 3t)/2` for unrestricted Byzantine processes.

use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

use homonym_core::codec::{DecodeError, Reader, WireDecode, WireEncode, Writer};
use homonym_core::intern::Tok;
use homonym_core::{
    Domain, Id, Inbox, Interner, Protocol, ProtocolFactory, Recipients, Round, Value, WireSize,
};

use crate::mult_broadcast::{MultBroadcast, MultPart};

/// Payloads of the multiplicity broadcast layer.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum RestrictedPayload<V> {
    /// `⟨propose v⟩` — broadcast in superround `4ph` (Figure 7 line 7).
    /// Unlike Figure 5's set-valued proposals, each proper value is
    /// broadcast separately.
    Propose(V),
    /// `⟨vote v⟩` — broadcast in superround `4ph + 2` (line 14).
    Vote(V),
}

/// Direct (non-broadcast) items. Shared with the bounded variant
/// (`crate::bounded_restricted`), which speaks the same vocabulary.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub(crate) enum Direct<V> {
    /// `⟨lock, v, ph⟩` (line 10).
    Lock {
        /// The leader's lock value.
        v: V,
        /// The phase.
        ph: u64,
    },
    /// `⟨ack, v, ph⟩` (line 19).
    Ack {
        /// The acked value.
        v: V,
        /// The phase.
        ph: u64,
    },
}

/// The single wire message per round: the Figure 6 part, the direct items,
/// and the proper set appended to every message.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RestrictedBundle<V> {
    part: MultPart<RestrictedPayload<V>>,
    directs: BTreeSet<Direct<V>>,
    proper: BTreeSet<V>,
}

impl<V: Value + WireSize> WireSize for RestrictedPayload<V> {
    fn wire_bits(&self) -> u64 {
        match self {
            RestrictedPayload::Propose(v) | RestrictedPayload::Vote(v) => v.wire_bits(),
        }
    }
}

impl<V: Value + WireSize> WireSize for Direct<V> {
    fn wire_bits(&self) -> u64 {
        match self {
            Direct::Lock { v, ph } | Direct::Ack { v, ph } => v.wire_bits() + ph.wire_bits(),
        }
    }
}

impl<V: Value + WireEncode> WireEncode for RestrictedPayload<V> {
    fn encode(&self, w: &mut Writer) {
        match self {
            RestrictedPayload::Propose(v) => {
                w.put_u8(0);
                v.encode(w);
            }
            RestrictedPayload::Vote(v) => {
                w.put_u8(1);
                v.encode(w);
            }
        }
    }
}

impl<V: Value + WireDecode> WireDecode for RestrictedPayload<V> {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        match r.take_u8()? {
            0 => Ok(RestrictedPayload::Propose(V::decode(r)?)),
            1 => Ok(RestrictedPayload::Vote(V::decode(r)?)),
            tag => Err(DecodeError::BadTag {
                what: "RestrictedPayload",
                tag,
            }),
        }
    }
}

impl<V: Value + WireEncode> WireEncode for Direct<V> {
    fn encode(&self, w: &mut Writer) {
        match self {
            Direct::Lock { v, ph } => {
                w.put_u8(0);
                v.encode(w);
                ph.encode(w);
            }
            Direct::Ack { v, ph } => {
                w.put_u8(1);
                v.encode(w);
                ph.encode(w);
            }
        }
    }
}

impl<V: Value + WireDecode> WireDecode for Direct<V> {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        match r.take_u8()? {
            0 => Ok(Direct::Lock {
                v: V::decode(r)?,
                ph: u64::decode(r)?,
            }),
            1 => Ok(Direct::Ack {
                v: V::decode(r)?,
                ph: u64::decode(r)?,
            }),
            tag => Err(DecodeError::BadTag {
                what: "Direct",
                tag,
            }),
        }
    }
}

impl<V: Value + WireEncode> WireEncode for RestrictedBundle<V> {
    fn encode(&self, w: &mut Writer) {
        self.part.encode(w);
        self.directs.encode(w);
        self.proper.encode(w);
    }
}

impl<V: Value + WireDecode> WireDecode for RestrictedBundle<V> {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(RestrictedBundle {
            part: MultPart::decode(r)?,
            directs: BTreeSet::decode(r)?,
            proper: BTreeSet::decode(r)?,
        })
    }
}

impl<V: Value + WireSize> WireSize for RestrictedBundle<V> {
    fn wire_bits(&self) -> u64 {
        self.part.wire_bits() + self.directs.wire_bits() + self.proper.wire_bits()
    }
}

impl<V: Value> RestrictedBundle<V> {
    /// The `⟨ack, v, ph⟩` items this bundle carries, as `(value, phase)`
    /// pairs. Diagnostic: the Lemma 32 invariant tests scan execution
    /// traces for acks sent by correct processes.
    pub fn acks(&self) -> Vec<(&V, u64)> {
        self.directs
            .iter()
            .filter_map(|d| match d {
                Direct::Ack { v, ph } => Some((v, *ph)),
                _ => None,
            })
            .collect()
    }

    /// The `⟨lock, v, ph⟩` leader requests this bundle carries.
    pub fn lock_requests(&self) -> Vec<(&V, u64)> {
        self.directs
            .iter()
            .filter_map(|d| match d {
                Direct::Lock { v, ph } => Some((v, *ph)),
                _ => None,
            })
            .collect()
    }

    /// The proper set appended to this bundle.
    pub fn proper_view(&self) -> &BTreeSet<V> {
        &self.proper
    }
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct PhasePos {
    ph: u64,
    /// Round within the phase, `0..8` (four superrounds).
    w: u64,
}

fn phase_pos(round: Round) -> PhasePos {
    PhasePos {
        ph: round.index() / 8,
        w: round.index() % 8,
    }
}

/// One process of the Figure 7 protocol.
///
/// # Example
///
/// ```
/// use homonym_core::{Domain, Id, Protocol};
/// use homonym_psync::RestrictedAgreement;
///
/// // n = 4, ℓ = 2, t = 1: ℓ > t and n > 3t — solvable against restricted
/// // Byzantine processes even though ℓ ≤ 3t.
/// let p = RestrictedAgreement::new(4, 2, 1, Domain::binary(), Id::new(2), true);
/// assert_eq!(p.id(), Id::new(2));
/// ```
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct RestrictedAgreement<V> {
    n: usize,
    ell: usize,
    t: usize,
    domain: Domain<V>,
    id: Id,

    proper: BTreeSet<V>,
    locks: BTreeSet<(V, u64)>,
    decision: Option<V>,

    bcast: MultBroadcast<RestrictedPayload<V>>,
    /// Every distinct accepted payload, interned once — the witness table
    /// keys on tokens so the per-round quorum probes never deep-compare
    /// or clone payloads.
    wit_intern: Interner<RestrictedPayload<V>>,
    /// Cumulative witness table: `(payload token, sr)` → identifier → the
    /// largest α accepted from it. The witness count is the sum over
    /// identifiers.
    witnesses: BTreeMap<(Tok, u64), BTreeMap<Id, u64>>,
    /// Lock values received from the leader identifier, per phase.
    leader_locks: BTreeMap<u64, BTreeSet<V>>,
    /// The last bundle built, plus the fingerprints deciding whether it
    /// can be re-sent as-is (the same incremental-bundle scheme as the
    /// Figure 5 protocol).
    send_cache: Option<SendCache<V>>,
}

/// The cached outgoing bundle and the state fingerprints it was built
/// from.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
struct SendCache<V> {
    bundle: Arc<RestrictedBundle<V>>,
    /// [`MultBroadcast`] generation at build time.
    generation: u64,
    /// Proper-set size at build time (the proper set only grows).
    proper_len: usize,
    /// Only bundles with no `⟨init⟩` tuples and no directs may be
    /// re-sent (echo tuples stay valid: their `R ≥ 2k` bound is
    /// monotone in the round).
    reusable: bool,
}

impl<V: Value> RestrictedAgreement<V> {
    /// Creates the automaton for a process holding `id` proposing `input`.
    ///
    /// Correct when `n > 3t` (safety) and `ℓ > t` (liveness); may be
    /// instantiated outside that range for lower-bound experiments.
    ///
    /// # Panics
    ///
    /// Panics if `input` is outside `domain`.
    pub fn new(n: usize, ell: usize, t: usize, domain: Domain<V>, id: Id, input: V) -> Self {
        assert!(domain.contains(&input), "input must belong to the domain");
        RestrictedAgreement {
            n,
            ell,
            t,
            id,
            proper: BTreeSet::from([input]),
            locks: BTreeSet::new(),
            decision: None,
            bcast: MultBroadcast::new(n, t, id),
            wit_intern: Interner::new(),
            witnesses: BTreeMap::new(),
            leader_locks: BTreeMap::new(),
            send_cache: None,
            domain,
        }
    }

    /// The witness quorum `n − t`.
    pub fn quorum(&self) -> u64 {
        (self.n - self.t) as u64
    }

    /// The proper set (diagnostic).
    pub fn proper(&self) -> &BTreeSet<V> {
        &self.proper
    }

    /// The lock set (diagnostic).
    pub fn locks(&self) -> &BTreeSet<(V, u64)> {
        &self.locks
    }

    fn is_leader(&self, ph: u64) -> bool {
        Id::phase_leader(ph, self.ell) == self.id
    }

    /// The current number of witnesses for `(payload, sr)`.
    fn witness_count(&self, payload: &RestrictedPayload<V>, sr: u64) -> u64 {
        self.wit_intern
            .get(payload)
            .and_then(|tok| self.witnesses.get(&(tok, sr)))
            .map(|per_id| per_id.values().sum())
            .unwrap_or(0)
    }

    /// Line 6: proper values not excluded by a lock on another value.
    fn candidate_set(&self) -> BTreeSet<V> {
        self.proper
            .iter()
            .filter(|v| !self.locks.iter().any(|(w, _)| w != *v))
            .cloned()
            .collect()
    }

    /// Values with at least `n − t` witnesses for `⟨propose v⟩` at
    /// superround `4ph`, ascending.
    fn witnessed_proposals(&self, ph: u64) -> Vec<V> {
        self.domain
            .values()
            .iter()
            .filter(|v| {
                self.witness_count(&RestrictedPayload::Propose((*v).clone()), 4 * ph)
                    >= self.quorum()
            })
            .cloned()
            .collect()
    }

    fn decide(&mut self, v: V) {
        if self.decision.is_none() {
            self.decision = Some(v);
        }
    }

    /// Lines 24–26: release locks overtaken by `n − t` witnesses for a
    /// vote on a different value in a later phase.
    fn release_locks(&mut self) {
        let quorum = self.quorum();
        let overtaken: Vec<(V, u64)> = self
            .locks
            .iter()
            .filter(|(v1, ph1)| {
                self.witnesses.iter().any(|(&(tok, sr), per_id)| {
                    matches!(self.wit_intern.resolve(tok), RestrictedPayload::Vote(v2) if v2 != v1)
                        && sr > 4 * ph1 + 2
                        && per_id.values().sum::<u64>() >= quorum
                })
            })
            .cloned()
            .collect();
        for pair in overtaken {
            self.locks.remove(&pair);
        }
    }

    /// Conservative rounds to decision after stabilization: every
    /// identifier leads within `ℓ` phases, plus slack.
    pub fn round_bound(ell: usize) -> u64 {
        8 * (ell as u64 + 2)
    }
}

impl<V: Value> Protocol for RestrictedAgreement<V> {
    type Msg = RestrictedBundle<V>;
    type Value = V;

    fn id(&self) -> Id {
        self.id
    }

    fn send(&mut self, round: Round) -> Vec<(Recipients, RestrictedBundle<V>)> {
        self.send_shared(round)
            .into_iter()
            .map(|(recipients, bundle)| (recipients, (*bundle).clone()))
            .collect()
    }

    fn send_shared(&mut self, round: Round) -> Vec<(Recipients, Arc<RestrictedBundle<V>>)> {
        let PhasePos { ph, w } = phase_pos(round);
        let mut directs = BTreeSet::new();

        match w {
            0 => {
                // Line 7: broadcast each candidate value separately.
                for v in self.candidate_set() {
                    self.bcast.broadcast(RestrictedPayload::Propose(v), 4 * ph);
                }
            }
            2 if self.is_leader(ph) => {
                // Lines 9–10: leaders lock a witnessed proposal.
                if let Some(v) = self.witnessed_proposals(ph).into_iter().next() {
                    directs.insert(Direct::Lock { v, ph });
                }
            }
            4 => {
                // Lines 12–14: vote for a leader lock with witness support.
                let candidate = self
                    .leader_locks
                    .get(&ph)
                    .into_iter()
                    .flatten()
                    .find(|v| {
                        self.witness_count(&RestrictedPayload::Propose((*v).clone()), 4 * ph)
                            >= self.quorum()
                    })
                    .cloned();
                if let Some(v) = candidate {
                    self.bcast.broadcast(RestrictedPayload::Vote(v), 4 * ph + 2);
                }
            }
            6 => {
                // Lines 16–19: lock and ack a witnessed vote.
                let choice = self
                    .domain
                    .values()
                    .iter()
                    .find(|v| {
                        self.witness_count(&RestrictedPayload::Vote((*v).clone()), 4 * ph + 2)
                            >= self.quorum()
                    })
                    .cloned();
                if let Some(v) = choice {
                    let stale: Vec<(V, u64)> = self
                        .locks
                        .iter()
                        .filter(|(w_, _)| *w_ == v)
                        .cloned()
                        .collect();
                    for pair in stale {
                        self.locks.remove(&pair);
                    }
                    self.locks.insert((v.clone(), ph));
                    directs.insert(Direct::Ack { v, ph });
                }
            }
            _ => {}
        }

        // Reuse the cached bundle when its content would be identical:
        // no directs, no due inits, echo table and proper set untouched.
        if directs.is_empty() && !self.bcast.init_due(round) {
            if let Some(cache) = &self.send_cache {
                if cache.reusable
                    && cache.generation == self.bcast.generation()
                    && cache.proper_len == self.proper.len()
                {
                    return vec![(Recipients::All, Arc::clone(&cache.bundle))];
                }
            }
        }
        let part = self.bcast.part_to_send(round);
        let reusable = part.inits.is_empty() && directs.is_empty();
        let bundle = Arc::new(RestrictedBundle {
            part,
            directs,
            proper: self.proper.clone(),
        });
        self.send_cache = Some(SendCache {
            bundle: Arc::clone(&bundle),
            generation: self.bcast.generation(),
            proper_len: self.proper.len(),
            reusable,
        });
        vec![(Recipients::All, bundle)]
    }

    fn receive(&mut self, round: Round, inbox: &Inbox<RestrictedBundle<V>>) {
        let PhasePos { ph, w } = phase_pos(round);

        // Broadcast layer (numerate: multiplicities flow through; no
        // pointer-skip here — Figure 6 recomputes its thresholds from
        // each round's support multiset, so every part must be scanned).
        let received: Vec<(Id, &MultPart<RestrictedPayload<V>>, u64)> = inbox
            .iter()
            .map(|(src, b, mult)| (src, &b.part, mult))
            .collect();
        for accept in self.bcast.observe(round, &received) {
            let key = (self.wit_intern.intern(&accept.payload), accept.sr);
            let per_id = self.witnesses.entry(key).or_default();
            let entry = per_id.entry(accept.src).or_insert(0);
            *entry = (*entry).max(accept.alpha);
        }

        // Proper-set rules (numerate: count messages with multiplicity).
        {
            let views: Vec<(u64, &BTreeSet<V>)> =
                inbox.iter().map(|(_, b, mult)| (mult, &b.proper)).collect();
            let total: u64 = views.iter().map(|&(c, _)| c).sum();
            let mut reached = false;
            for v in self.domain.values() {
                let support: u64 = views
                    .iter()
                    .filter(|(_, s)| s.contains(v))
                    .map(|&(c, _)| c)
                    .sum();
                if support >= self.t as u64 + 1 {
                    if !self.proper.contains(v) {
                        self.proper.insert(v.clone());
                    }
                    reached = true;
                }
            }
            if !reached && total >= 2 * self.t as u64 + 1 {
                for v in self.domain.values() {
                    if !self.proper.contains(v) {
                        self.proper.insert(v.clone());
                    }
                }
            }
        }

        // Leader lock messages for this phase.
        if (2..=5).contains(&w) {
            let leader = Id::phase_leader(ph, self.ell);
            for (src, bundle, _) in inbox.iter() {
                if src != leader {
                    continue;
                }
                for d in &bundle.directs {
                    if let Direct::Lock { v, ph: lph } = d {
                        if *lph == ph && self.domain.contains(v) {
                            self.leader_locks.entry(ph).or_default().insert(v.clone());
                        }
                    }
                }
            }
        }

        if w == 6 {
            // Lines 20–23: decide on n − t ack messages (with multiplicity)
            // for a value with n − t witnessed proposals. Note: *anyone*
            // decides here, not just leaders — no decide relay is needed.
            if self.decision.is_none() {
                let quorum = self.quorum();
                let choice = self
                    .domain
                    .values()
                    .iter()
                    .find(|v| {
                        let acks = inbox.count_where(|b| {
                            b.directs.iter().any(
                                |d| matches!(d, Direct::Ack { v: av, ph: aph } if av == *v && *aph == ph),
                            )
                        });
                        acks >= quorum
                            && self.witness_count(&RestrictedPayload::Propose((*v).clone()), 4 * ph)
                                >= quorum
                    })
                    .cloned();
                if let Some(v) = choice {
                    self.decide(v);
                }
            }
        }

        if w == 7 {
            self.release_locks();
        }
    }

    fn decision(&self) -> Option<V> {
        self.decision.clone()
    }

    fn state_bits(&self) -> u64 {
        let mut bits = self.bcast.state_bits();
        bits += self.proper.len() as u64 * 64;
        bits += self.locks.len() as u64 * 128;
        bits += self.wit_intern.len() as u64 * 128;
        for per_id in self.witnesses.values() {
            bits += 128 + per_id.len() as u64 * 80;
        }
        bits += self
            .leader_locks
            .values()
            .map(|s| 64 + s.len() as u64 * 64)
            .sum::<u64>();
        bits
    }
}

/// A [`ProtocolFactory`] for [`RestrictedAgreement`] processes.
#[derive(Clone, Debug)]
pub struct RestrictedFactory<V> {
    n: usize,
    ell: usize,
    t: usize,
    domain: Domain<V>,
}

impl<V: Value> RestrictedFactory<V> {
    /// Creates a factory for `n` processes, `ell` identifiers, fault bound
    /// `t`, over `domain`.
    pub fn new(n: usize, ell: usize, t: usize, domain: Domain<V>) -> Self {
        RestrictedFactory { n, ell, t, domain }
    }

    /// Conservative rounds-to-decision after stabilization.
    pub fn round_bound(&self) -> u64 {
        RestrictedAgreement::<V>::round_bound(self.ell)
    }
}

impl<V: Value> ProtocolFactory for RestrictedFactory<V> {
    type P = RestrictedAgreement<V>;

    fn spawn(&self, id: Id, input: V) -> RestrictedAgreement<V> {
        RestrictedAgreement::new(self.n, self.ell, self.t, self.domain.clone(), id, input)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use homonym_core::{Counting, Envelope};

    fn run_clean(
        n: usize,
        ell: usize,
        t: usize,
        assignment: &[u16],
        inputs: &[bool],
        rounds: u64,
    ) -> Vec<Option<bool>> {
        let mut procs: Vec<RestrictedAgreement<bool>> = (0..n)
            .map(|k| {
                RestrictedAgreement::new(
                    n,
                    ell,
                    t,
                    Domain::binary(),
                    Id::new(assignment[k]),
                    inputs[k],
                )
            })
            .collect();
        for r in 0..rounds {
            let round = Round::new(r);
            let outs: Vec<RestrictedBundle<bool>> = procs
                .iter_mut()
                .map(|p| p.send(round).remove(0).1)
                .collect();
            let envs: Vec<Envelope<RestrictedBundle<bool>>> = outs
                .iter()
                .enumerate()
                .map(|(k, b)| Envelope {
                    src: Id::new(assignment[k]),
                    msg: b.clone(),
                })
                .collect();
            let inbox = Inbox::collect(envs, Counting::Numerate);
            for p in &mut procs {
                p.receive(round, &inbox);
            }
        }
        procs.iter().map(|p| p.decision()).collect()
    }

    #[test]
    fn unanimous_anonymous_system_decides() {
        // The striking case: ℓ = 2 = t + 1 identifiers for n = 4 processes —
        // far below the 3t + 1 identifiers unrestricted adversaries demand.
        for v in [false, true] {
            let decisions = run_clean(4, 2, 1, &[1, 2, 2, 2], &[v; 4], 8 * 5);
            for d in &decisions {
                assert_eq!(*d, Some(v));
            }
        }
    }

    #[test]
    fn split_inputs_agree() {
        let decisions = run_clean(4, 2, 1, &[1, 1, 2, 2], &[false, true, false, true], 8 * 5);
        assert!(decisions[0].is_some(), "{decisions:?}");
        assert!(
            decisions.iter().all(|d| *d == decisions[0]),
            "{decisions:?}"
        );
    }

    #[test]
    fn fully_anonymous_needs_t_zero() {
        // ℓ = 1, t = 0: trivially ℓ > t; everyone shares one identifier.
        let decisions = run_clean(3, 1, 0, &[1, 1, 1], &[true, true, true], 8 * 4);
        for d in &decisions {
            assert_eq!(*d, Some(true));
        }
    }

    #[test]
    fn witness_accumulation() {
        let mut p = RestrictedAgreement::new(4, 2, 1, Domain::binary(), Id::new(1), true);
        let payload = RestrictedPayload::Propose(true);
        let key = (p.wit_intern.intern(&payload), 0u64);
        p.witnesses
            .entry(key)
            .or_default()
            .extend([(Id::new(1), 2u64), (Id::new(2), 1u64)]);
        assert_eq!(p.witness_count(&payload, 0), 3);
        // Max, not sum, per identifier.
        let per_id = p.witnesses.get_mut(&key).unwrap();
        let e = per_id.entry(Id::new(1)).or_insert(0);
        *e = (*e).max(1);
        assert_eq!(p.witness_count(&payload, 0), 3);
    }

    #[test]
    fn release_locks_on_later_vote_quorum() {
        let mut p = RestrictedAgreement::new(4, 2, 1, Domain::binary(), Id::new(1), true);
        p.locks.insert((true, 0));
        // n − t = 3 witnesses for ⟨vote false⟩ at superround 4·1 + 2 = 6.
        let key = (p.wit_intern.intern(&RestrictedPayload::Vote(false)), 6);
        p.witnesses
            .entry(key)
            .or_default()
            .extend([(Id::new(1), 2u64), (Id::new(2), 1u64)]);
        p.release_locks();
        assert!(p.locks.is_empty());
    }

    #[test]
    fn lock_not_released_by_same_value_or_earlier_phase() {
        let mut p = RestrictedAgreement::new(4, 2, 1, Domain::binary(), Id::new(1), true);
        p.locks.insert((true, 2));
        // Same value, later phase: no release.
        let same = (p.wit_intern.intern(&RestrictedPayload::Vote(true)), 14);
        p.witnesses.entry(same).or_default().insert(Id::new(1), 3);
        // Different value, earlier superround: no release.
        let earlier = (p.wit_intern.intern(&RestrictedPayload::Vote(false)), 6);
        p.witnesses
            .entry(earlier)
            .or_default()
            .insert(Id::new(1), 3);
        p.release_locks();
        assert!(p.locks.contains(&(true, 2)));
    }

    #[test]
    fn candidate_set_respects_locks() {
        let mut p = RestrictedAgreement::new(4, 2, 1, Domain::binary(), Id::new(1), false);
        p.proper.insert(true);
        p.locks.insert((false, 1));
        assert_eq!(p.candidate_set(), BTreeSet::from([false]));
    }

    #[test]
    fn phase_leader_rotation_over_two_ids() {
        let p1 = RestrictedAgreement::new(4, 2, 1, Domain::binary(), Id::new(1), true);
        let p2 = RestrictedAgreement::new(4, 2, 1, Domain::binary(), Id::new(2), true);
        assert!(p1.is_leader(0) && !p2.is_leader(0));
        assert!(!p1.is_leader(1) && p2.is_leader(1));
    }
}
