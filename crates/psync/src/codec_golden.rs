//! Golden byte-vector tests pinning the wire format of every psync
//! message type (format version 1, the single leading byte of each
//! frame). Breaking any of these vectors is a wire-format break: bump
//! `FORMAT_VERSION` in `homonym_core::codec` and regenerate.

use std::collections::{BTreeMap, BTreeSet};

use std::sync::Arc;

use homonym_core::codec::{decode_frame, encode_frame};
use homonym_core::{ChainMsg, Domain, Id, Protocol, Round};

use crate::agreement::{HomonymAgreement, Payload};
use crate::bounded::BoundedAgreement;
use crate::bounded_restricted::BoundedRestrictedAgreement;
use crate::broadcast::EchoItem;
use crate::mult_broadcast::MultPart;
use crate::restricted::{RestrictedAgreement, RestrictedPayload};

#[test]
fn golden_payload_vectors() {
    let propose = Payload::Propose {
        values: BTreeSet::from([false, true]),
        ph: 1,
    };
    assert_eq!(encode_frame(&propose), vec![1, 0, 2, 0, 1, 1]);
    let vote = Payload::<bool>::Vote { v: true, ph: 2 };
    assert_eq!(encode_frame(&vote), vec![1, 1, 1, 2]);
    assert_eq!(
        encode_frame(&RestrictedPayload::Propose(true)),
        vec![1, 0, 1]
    );
}

#[test]
fn golden_echo_item_vector() {
    let item = EchoItem::new("alpha".to_string(), 3, Id::new(2));
    assert_eq!(encode_frame(&item), vec![1, 5, 97, 108, 112, 104, 97, 3, 2]);
}

#[test]
fn golden_mult_part_vector() {
    let part = MultPart {
        inits: BTreeMap::from([("alpha".to_string(), 1u64)]),
        echoes: BTreeMap::from([((Id::new(2), "beta".to_string(), 1u64), 2u64)]),
    };
    assert_eq!(
        encode_frame(&part),
        vec![1, 1, 5, 97, 108, 112, 104, 97, 1, 1, 2, 4, 98, 101, 116, 97, 1, 2]
    );
}

#[test]
fn golden_bundle_vectors() {
    // The deterministic round-0 bundle of a fresh `n = ℓ = 4, t = 1`
    // process proposing `true`: one init, no echoes, directs or propers.
    let mut agreement = HomonymAgreement::new(4, 4, 1, Domain::binary(), Id::new(1), true);
    let out = agreement.send(Round::ZERO);
    assert_eq!(encode_frame(&out[0].1), vec![1, 1, 0, 1, 1, 0, 0, 0, 1, 1]);

    let mut restricted = RestrictedAgreement::new(4, 4, 1, Domain::binary(), Id::new(1), true);
    let rout = restricted.send(Round::ZERO);
    assert_eq!(encode_frame(&rout[0].1), vec![1, 1, 0, 1, 0, 0, 0, 1, 1]);
}

#[test]
fn golden_bounded_bundle_vectors() {
    // The bounded bundles are the faithful bundles plus a trailing
    // superround watermark (0 at round 0).
    let mut agreement = BoundedAgreement::new(4, 4, 1, Domain::binary(), Id::new(1), true);
    let out = agreement.send(Round::ZERO);
    assert_eq!(
        encode_frame(&out[0].1),
        vec![1, 1, 0, 1, 1, 0, 0, 0, 1, 1, 0]
    );
    let decoded: crate::BoundedBundle<bool> = decode_frame(&encode_frame(&out[0].1)).unwrap();
    assert_eq!(decoded, out[0].1);

    let mut restricted =
        BoundedRestrictedAgreement::new(4, 4, 1, Domain::binary(), Id::new(1), true);
    let rout = restricted.send(Round::ZERO);
    assert_eq!(encode_frame(&rout[0].1), vec![1, 1, 0, 1, 0, 0, 0, 1, 1, 0]);
    let rdecoded: crate::BoundedRestrictedBundle<bool> =
        decode_frame(&encode_frame(&rout[0].1)).unwrap();
    assert_eq!(rdecoded, rout[0].1);
}

#[test]
fn golden_chain_msg_vector() {
    // height 3, a resolved (height 1, true) report, inner payload "hi".
    let msg = ChainMsg {
        height: 3,
        decided: Some((1, true)),
        inner: Arc::new("hi".to_string()),
    };
    assert_eq!(encode_frame(&msg), vec![1, 3, 1, 1, 1, 2, 104, 105]);
    let decoded: ChainMsg<String, bool> = decode_frame(&encode_frame(&msg)).unwrap();
    assert_eq!(decoded, msg);
}
