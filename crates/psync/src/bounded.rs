//! Bounded-state variants of the Proposition 6 broadcast and the Figure 5
//! agreement: flat steady-state memory, constant-size bundles.
//!
//! The faithful [`EchoBroadcast`](crate::EchoBroadcast) retransmits every
//! echo it ever joined, forever — the relay property asks for it, and both
//! the per-process state and the per-round bundle grow O(history). The
//! bounded variant applies the pattern production BFT engines use (see the
//! malachite note in `SNIPPETS.md`): each process stamps every bundle with
//! a monotone **watermark** (its current superround), receivers maintain a
//! per-identifier `max_sr` summary of those watermarks, and the
//! `ℓ − t`-th largest entry — the **stable superround**, a quorum of
//! identifiers demonstrably past it — drives a pruning horizon
//! `stable_sr − window`. Everything below the horizon is dropped from the
//! echo set, the evidence table, the accept log, and the outgoing wire
//! set, so bundles carry only the last `window` superrounds of echoes and
//! per-process state is O(window · ℓ · |payloads per superround|) —
//! constant in the run length.
//!
//! Pruning is **quorum-driven, not clock-driven**: the horizon advances
//! only when `ℓ − t` identifiers are *observed* past it (watermarks are
//! capped at the receiver's own superround, so Byzantine senders cannot
//! fast-forward it). A partition freezes the horizon rather than dropping
//! live evidence; once healed, the relay property holds for every key
//! still inside the window — which is all the agreement layer ever reads,
//! because its quorum checks are per-current-phase. The faithful protocols
//! stay untouched as the reference oracle; `bounded_equivalence` tests pin
//! decision-for-decision parity against them.

use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

use homonym_core::codec::{DecodeError, Reader, WireDecode, WireEncode, Writer};
use homonym_core::{
    Domain, Id, IdBits, Inbox, Protocol, ProtocolFactory, Recipients, Round, Value,
};

use crate::agreement::{phase_pos, Direct, Payload, PhasePos};
use crate::broadcast::{Accept, EchoItem};

/// How many superrounds of echoes survive behind the stable superround by
/// default: four full phases of the Figure 5 skeleton — far more slack
/// than any in-window quorum read needs, small enough that the state
/// plateau is a few dozen keys.
pub const DEFAULT_WINDOW_SUPERROUNDS: u64 = 16;

/// The deep key the bounded tables use, ordered superround-first so the
/// horizon sweep is an ordered prefix removal. No interner: an interner is
/// append-only and would silently reintroduce the O(history) growth this
/// module exists to remove.
type BKey<M> = (u64, Id, Arc<M>);

/// One process's view of the bounded echo-broadcast layer.
///
/// Same observable protocol as [`EchoBroadcast`](crate::EchoBroadcast) —
/// `⟨init m⟩` in the first round of a superround, `⟨echo m, r, i⟩`
/// joined at `ℓ − 2t` distinct identifiers, `Accept(m, i)` at `ℓ − t` —
/// restricted to the sliding superround window described in the module
/// docs. The owning protocol feeds received watermarks alongside the
/// echo items; everything below `stable_sr − window` is pruned.
#[derive(Clone, Debug)]
pub struct BoundedEchoBroadcast<M> {
    ell: usize,
    t: usize,
    /// Superrounds of history kept behind the stable superround.
    window: u64,
    /// Keys this process currently echoes (within the window).
    echoing: BTreeSet<BKey<M>>,
    /// The wire form of `echoing`, shared with outgoing bundles.
    wire: Arc<BTreeSet<EchoItem<M>>>,
    /// Distinct identifiers seen echoing each in-window key.
    evidence: BTreeMap<BKey<M>, IdBits>,
    /// In-window keys already accepted (each accept fires once; keys
    /// below the horizon cannot re-enter, so pruning cannot re-fire one).
    accepted: BTreeSet<BKey<M>>,
    /// Payloads queued for `⟨init⟩` at the next first-of-superround send.
    queue: Vec<M>,
    /// Monotone per-identifier watermark summary (capped at our own
    /// superround on ingest). Size ≤ ℓ.
    max_sr: BTreeMap<Id, u64>,
    /// Keys with superround below this are pruned and ignored. Monotone.
    horizon: u64,
    /// Bumped whenever the outgoing wire set changes (growth *or* prune).
    generation: u64,
    /// Scratch: keys whose evidence grew this `observe` call.
    dirty: Vec<BKey<M>>,
}

impl<M: homonym_core::Message> BoundedEchoBroadcast<M> {
    /// Creates the layer for `ell` identifiers tolerating `t` faults with
    /// the default window.
    pub fn new(ell: usize, t: usize) -> Self {
        Self::with_window(ell, t, DEFAULT_WINDOW_SUPERROUNDS)
    }

    /// Creates the layer with an explicit window (superrounds of history
    /// kept behind the stable superround).
    pub fn with_window(ell: usize, t: usize, window: u64) -> Self {
        BoundedEchoBroadcast {
            ell,
            t,
            window,
            echoing: BTreeSet::new(),
            wire: Arc::new(BTreeSet::new()),
            evidence: BTreeMap::new(),
            accepted: BTreeSet::new(),
            queue: Vec::new(),
            max_sr: BTreeMap::new(),
            horizon: 0,
            generation: 0,
            dirty: Vec::new(),
        }
    }

    /// The accept threshold `ℓ − t` (saturating).
    pub fn accept_threshold(&self) -> usize {
        self.ell.saturating_sub(self.t)
    }

    /// The echo-join threshold `ℓ − 2t` (saturating, at least 1).
    pub fn join_threshold(&self) -> usize {
        self.ell.saturating_sub(2 * self.t).max(1)
    }

    /// Queues `Broadcast(payload)` for the next first-of-superround send.
    pub fn broadcast(&mut self, payload: M) {
        self.queue.push(payload);
    }

    /// The items for this round's bundle: due `⟨init⟩`s plus the
    /// (windowed) echo set as a shared handle.
    pub fn shared_to_send(&mut self, round: Round) -> (Vec<M>, Arc<BTreeSet<EchoItem<M>>>) {
        let inits = if round.is_first_of_superround() {
            std::mem::take(&mut self.queue)
        } else {
            Vec::new()
        };
        (inits, Arc::clone(&self.wire))
    }

    /// Whether a queued `Broadcast` would emit an `⟨init⟩` at `round`.
    pub(crate) fn init_due(&self, round: Round) -> bool {
        round.is_first_of_superround() && !self.queue.is_empty()
    }

    /// A counter that advances whenever the outgoing echo set changes.
    pub(crate) fn generation(&self) -> u64 {
        self.generation
    }

    /// The current pruning horizon (diagnostic: superround below which
    /// all state has been discarded).
    pub fn horizon(&self) -> u64 {
        self.horizon
    }

    /// Starts echoing `key` (idempotent), keeping the wire set in step.
    fn start_echoing(&mut self, key: BKey<M>) {
        let item = EchoItem {
            payload: Arc::clone(&key.2),
            sr: key.0,
            src: key.1,
        };
        if self.echoing.insert(key) {
            self.generation += 1;
            Arc::make_mut(&mut self.wire).insert(item);
        }
    }

    /// The stable superround: the `ℓ − t`-th largest watermark — a quorum
    /// of identifiers has demonstrably progressed past it.
    fn stable_sr(&self) -> u64 {
        let k = self.accept_threshold().max(1);
        if self.max_sr.len() < k {
            return 0;
        }
        let mut srs: Vec<u64> = self.max_sr.values().copied().collect();
        srs.sort_unstable_by(|a, b| b.cmp(a));
        srs[k - 1]
    }

    /// Drops every key below the horizon from all tables and the wire set.
    fn prune(&mut self) {
        let h = self.horizon;
        self.echoing.retain(|k| k.0 >= h);
        self.evidence.retain(|k, _| k.0 >= h);
        self.accepted.retain(|k| k.0 >= h);
        if self.wire.iter().any(|item| item.sr < h) {
            Arc::make_mut(&mut self.wire).retain(|item| item.sr >= h);
            self.generation += 1;
        }
    }

    /// Feeds one round's received items plus the senders' watermarks.
    /// Returns the accepts newly performed, in the faithful layer's
    /// `(payload, sr, src)` ascending order.
    pub fn observe(
        &mut self,
        round: Round,
        inits: &[(Id, &M)],
        echoes: &[(Id, &EchoItem<M>)],
        watermarks: &[(Id, u64)],
    ) -> Vec<Accept<M>> {
        let now_sr = round.superround().index();

        // Monotone watermark ingest, capped at our own superround so a
        // Byzantine sender cannot fast-forward the horizon.
        for &(src, sr) in watermarks {
            let sr = sr.min(now_sr);
            let entry = self.max_sr.entry(src).or_insert(0);
            *entry = (*entry).max(sr);
        }
        let new_horizon = self.stable_sr().saturating_sub(self.window);
        if new_horizon > self.horizon {
            self.horizon = new_horizon;
            self.prune();
        }

        // Inits start our echoing, stamped with our current superround —
        // always ≥ horizon, so a fresh init is never pruned on arrival.
        if round.is_first_of_superround() {
            for &(src, payload) in inits {
                self.start_echoing((now_sr, src, Arc::new(payload.clone())));
            }
        }

        // Echo evidence for in-window keys only: below the horizon the
        // key is settled history, above our own superround it can only be
        // forged (correct processes stamp inits with the receiver-side
        // superround, which our rounds have reached too).
        let ell = self.ell;
        let mut dirty = std::mem::take(&mut self.dirty);
        dirty.clear();
        for &(echoer, item) in echoes {
            if item.sr < self.horizon || item.sr > now_sr {
                continue;
            }
            let key = (item.sr, item.src, Arc::clone(&item.payload));
            let bits = self
                .evidence
                .entry(key.clone())
                .or_insert_with(|| IdBits::with_capacity(ell));
            if bits.insert(echoer.index()) {
                dirty.push(key);
            }
        }
        dirty.sort_unstable();
        dirty.dedup();

        let join = self.join_threshold();
        let accept = self.accept_threshold();
        let mut accepts = Vec::new();
        for key in &dirty {
            let supporters = self.evidence[key].len();
            if supporters >= join {
                self.start_echoing(key.clone());
            }
            if supporters >= accept && self.accepted.insert(key.clone()) {
                accepts.push(Accept {
                    payload: (*key.2).clone(),
                    sr: key.0,
                    src: key.1,
                });
            }
        }
        self.dirty = dirty;
        accepts.sort_by(|a, b| (&a.payload, a.sr, a.src).cmp(&(&b.payload, b.sr, b.src)));
        accepts
    }

    /// Whether `(payload, src)` has been accepted *within the window*.
    pub fn has_accepted(&self, payload: &M, src: Id) -> bool {
        self.accepted
            .iter()
            .any(|(_, i, m)| *i == src && **m == *payload)
    }

    /// Number of keys currently echoed (bounded by the window, unlike the
    /// faithful layer's forever-growing set).
    pub fn echoing_len(&self) -> usize {
        self.echoing.len()
    }

    /// Structural state-size estimate in bits: every table entry at its
    /// key-plus-handle footprint. The absolute scale is a proxy; what the
    /// O(1) claim needs is that this number plateaus over a run.
    pub fn state_bits(&self) -> u64 {
        let key = 192u64;
        (self.echoing.len() as u64) * key
            + (self.wire.len() as u64) * key
            + (self.evidence.len() as u64) * (key + self.ell as u64)
            + (self.accepted.len() as u64) * key
            + (self.max_sr.len() as u64) * 80
            + (self.queue.len() as u64) * 64
    }
}

/// The single wire message of the bounded Figure 5 protocol: the faithful
/// bundle's four fields plus the sender's superround **watermark**. The
/// echo set is the *windowed* one, so the bundle is constant-size; there
/// is no scan hint — windowed sets are small enough to rescan.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct BoundedBundle<V> {
    inits: BTreeSet<Payload<V>>,
    echoes: Arc<BTreeSet<EchoItem<Payload<V>>>>,
    directs: BTreeSet<Direct<V>>,
    proper: Arc<BTreeSet<V>>,
    /// The sender's current superround — receivers fold it into their
    /// `max_sr` summary, which drives the pruning horizon.
    watermark: u64,
}

impl<V: Value + WireEncode> WireEncode for BoundedBundle<V> {
    fn encode(&self, w: &mut Writer) {
        self.inits.encode(w);
        self.echoes.encode(w);
        self.directs.encode(w);
        self.proper.encode(w);
        self.watermark.encode(w);
    }
}

impl<V: Value + WireDecode> WireDecode for BoundedBundle<V> {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(BoundedBundle {
            inits: BTreeSet::decode(r)?,
            echoes: Arc::new(BTreeSet::decode(r)?),
            directs: BTreeSet::decode(r)?,
            proper: Arc::new(BTreeSet::decode(r)?),
            watermark: u64::decode(r)?,
        })
    }
}

impl<V: Value> BoundedBundle<V> {
    /// The `⟨ack v, ph⟩` items this bundle carries.
    pub fn acks(&self) -> Vec<(&V, u64)> {
        self.directs
            .iter()
            .filter_map(|d| match d {
                Direct::Ack { v, ph } => Some((v, *ph)),
                _ => None,
            })
            .collect()
    }

    /// The `⟨lock v, ph⟩` leader requests this bundle carries.
    pub fn lock_requests(&self) -> Vec<(&V, u64)> {
        self.directs
            .iter()
            .filter_map(|d| match d {
                Direct::Lock { v, ph } => Some((v, *ph)),
                _ => None,
            })
            .collect()
    }

    /// The `⟨decide v⟩` relays this bundle carries.
    pub fn decide_relays(&self) -> Vec<&V> {
        self.directs
            .iter()
            .filter_map(|d| match d {
                Direct::Decide { v } => Some(v),
                _ => None,
            })
            .collect()
    }

    /// The proper set appended to this bundle.
    pub fn proper_view(&self) -> &BTreeSet<V> {
        &self.proper
    }

    /// The sender's superround watermark.
    pub fn watermark(&self) -> u64 {
        self.watermark
    }
}

/// The cached outgoing bundle and the fingerprints it was built from.
/// Unlike the faithful cache, the watermark pins reuse to one superround.
#[derive(Clone, Debug)]
struct SendCache<V> {
    bundle: Arc<BoundedBundle<V>>,
    generation: u64,
    proper_len: usize,
    watermark: u64,
    reusable: bool,
}

/// The bounded-state Figure 5 protocol: identical phase logic to
/// [`HomonymAgreement`](crate::HomonymAgreement) over the bounded
/// broadcast layer, with the per-phase evidence tables pruned a few
/// phases behind the current one.
#[derive(Clone, Debug)]
pub struct BoundedAgreement<V> {
    n: usize,
    ell: usize,
    t: usize,
    domain: Domain<V>,
    id: Id,

    proper: Arc<BTreeSet<V>>,
    locks: BTreeSet<(V, u64)>,
    decision: Option<V>,

    bcast: BoundedEchoBroadcast<Payload<V>>,
    /// Accepted proposals: phase → identifier → candidate sets accepted.
    propose_acc: BTreeMap<u64, BTreeMap<Id, BTreeSet<BTreeSet<V>>>>,
    /// Accepted votes: phase → value → identifiers accepted from.
    vote_acc: BTreeMap<u64, BTreeMap<V, BTreeSet<Id>>>,
    /// Lock values received from the leader identifier, per phase.
    leader_locks: BTreeMap<u64, BTreeSet<V>>,
    /// The lock value sent as a leader, per phase.
    my_lock: BTreeMap<u64, V>,
    /// Phases of evidence kept behind the current one.
    keep_phases: u64,

    send_cache: Option<SendCache<V>>,
}

impl<V: Value> BoundedAgreement<V> {
    /// Creates the automaton — same parameters and panics as
    /// [`HomonymAgreement::new`](crate::HomonymAgreement::new).
    pub fn new(n: usize, ell: usize, t: usize, domain: Domain<V>, id: Id, input: V) -> Self {
        assert!(domain.contains(&input), "input must belong to the domain");
        assert!(ell >= t, "quorum ell - t requires ell >= t");
        BoundedAgreement {
            n,
            ell,
            t,
            id,
            proper: Arc::new(BTreeSet::from([input])),
            locks: BTreeSet::new(),
            decision: None,
            bcast: BoundedEchoBroadcast::new(ell, t),
            propose_acc: BTreeMap::new(),
            vote_acc: BTreeMap::new(),
            leader_locks: BTreeMap::new(),
            my_lock: BTreeMap::new(),
            keep_phases: DEFAULT_WINDOW_SUPERROUNDS / 4,
            send_cache: None,
            domain,
        }
    }

    /// The identifier quorum size `ℓ − t`.
    pub fn quorum(&self) -> usize {
        self.ell - self.t
    }

    /// The `(n, ℓ, t)` parameters this instance was built for.
    pub fn params(&self) -> (usize, usize, usize) {
        (self.n, self.ell, self.t)
    }

    /// The proper set (diagnostic).
    pub fn proper(&self) -> &BTreeSet<V> {
        &self.proper
    }

    /// Number of keys the broadcast layer currently echoes (diagnostic:
    /// this is the number the long-horizon flat-state test watches).
    pub fn echoing_len(&self) -> usize {
        self.bcast.echoing_len()
    }

    fn is_leader(&self, ph: u64) -> bool {
        Id::phase_leader(ph, self.ell) == self.id
    }

    fn candidate_set(&self) -> BTreeSet<V> {
        self.proper
            .iter()
            .filter(|v| !self.locks.iter().any(|(w, _)| w != *v))
            .cloned()
            .collect()
    }

    fn propose_support(&self, ph: u64, v: &V) -> usize {
        self.propose_acc
            .get(&ph)
            .map(|per_id| {
                per_id
                    .values()
                    .filter(|sets| sets.iter().any(|s| s.contains(v)))
                    .count()
            })
            .unwrap_or(0)
    }

    fn quorum_supported(&self, ph: u64) -> Vec<V> {
        self.domain
            .values()
            .iter()
            .filter(|v| self.propose_support(ph, v) >= self.quorum())
            .cloned()
            .collect()
    }

    fn vote_support(&self, ph: u64, v: &V) -> usize {
        self.vote_acc
            .get(&ph)
            .and_then(|per_v| per_v.get(v))
            .map(BTreeSet::len)
            .unwrap_or(0)
    }

    fn decide(&mut self, v: V) {
        if self.decision.is_none() {
            self.decision = Some(v);
        }
    }

    fn route_accepts(&mut self, accepts: Vec<Accept<Payload<V>>>) {
        for a in accepts {
            match a.payload {
                Payload::Propose { values, ph } => {
                    self.propose_acc
                        .entry(ph)
                        .or_default()
                        .entry(a.src)
                        .or_default()
                        .insert(values);
                }
                Payload::Vote { v, ph } => {
                    self.vote_acc
                        .entry(ph)
                        .or_default()
                        .entry(v)
                        .or_default()
                        .insert(a.src);
                }
            }
        }
    }

    fn release_locks(&mut self) {
        let quorum = self.quorum();
        let stale: Vec<(V, u64)> = self
            .locks
            .iter()
            .filter(|(v1, ph1)| {
                self.vote_acc.iter().any(|(&ph2, per_v)| {
                    ph2 > *ph1
                        && per_v
                            .iter()
                            .any(|(v2, ids)| v2 != v1 && ids.len() >= quorum)
                })
            })
            .cloned()
            .collect();
        for pair in stale {
            self.locks.remove(&pair);
        }
    }

    /// Drops per-phase evidence more than `keep_phases` behind `ph`. The
    /// phase logic only ever reads the current phase's tables; the one
    /// cross-phase reader, `release_locks`, compares locks against
    /// *later*-phase votes, which the retention keeps.
    fn prune_phases(&mut self, ph: u64) {
        let keep = ph.saturating_sub(self.keep_phases);
        self.propose_acc.retain(|&p, _| p >= keep);
        self.vote_acc.retain(|&p, _| p >= keep);
        self.leader_locks.retain(|&p, _| p >= keep);
        self.my_lock.retain(|&p, _| p >= keep);
    }

    /// Same conservative bound as the faithful protocol.
    pub fn round_bound(n: usize, ell: usize) -> u64 {
        crate::HomonymAgreement::<V>::round_bound(n, ell)
    }

    fn build_or_reuse(
        &mut self,
        round: Round,
        directs: BTreeSet<Direct<V>>,
    ) -> Arc<BoundedBundle<V>> {
        let watermark = round.superround().index();
        if directs.is_empty() && !self.bcast.init_due(round) {
            if let Some(cache) = &self.send_cache {
                if cache.reusable
                    && cache.generation == self.bcast.generation()
                    && cache.proper_len == self.proper.len()
                    && cache.watermark == watermark
                {
                    return Arc::clone(&cache.bundle);
                }
            }
        }
        let (inits, echoes) = self.bcast.shared_to_send(round);
        let reusable = inits.is_empty() && directs.is_empty();
        let bundle = Arc::new(BoundedBundle {
            inits: inits.into_iter().collect(),
            echoes,
            directs,
            proper: Arc::clone(&self.proper),
            watermark,
        });
        self.send_cache = Some(SendCache {
            bundle: Arc::clone(&bundle),
            generation: self.bcast.generation(),
            proper_len: self.proper.len(),
            watermark,
            reusable,
        });
        bundle
    }

    fn update_proper(&mut self, views: &[(Id, &BTreeSet<V>)]) {
        let reporter_ids: BTreeSet<Id> = views.iter().map(|&(i, _)| i).collect();
        let mut reached = false;
        for v in self.domain.values() {
            let support = views
                .iter()
                .filter(|(_, s)| s.contains(v))
                .map(|&(i, _)| i)
                .collect::<BTreeSet<Id>>()
                .len();
            if support >= self.t + 1 {
                if !self.proper.contains(v) {
                    Arc::make_mut(&mut self.proper).insert(v.clone());
                }
                reached = true;
            }
        }
        if !reached && reporter_ids.len() >= 2 * self.t + 1 {
            for v in self.domain.values() {
                if !self.proper.contains(v) {
                    Arc::make_mut(&mut self.proper).insert(v.clone());
                }
            }
        }
    }
}

impl<V: Value> Protocol for BoundedAgreement<V> {
    type Msg = BoundedBundle<V>;
    type Value = V;

    fn id(&self) -> Id {
        self.id
    }

    fn send(&mut self, round: Round) -> Vec<(Recipients, BoundedBundle<V>)> {
        self.send_shared(round)
            .into_iter()
            .map(|(recipients, bundle)| (recipients, (*bundle).clone()))
            .collect()
    }

    fn send_shared(&mut self, round: Round) -> Vec<(Recipients, Arc<BoundedBundle<V>>)> {
        let PhasePos { ph, w } = phase_pos(round);
        let mut directs = BTreeSet::new();

        match w {
            0 => {
                let values = self.candidate_set();
                self.bcast.broadcast(Payload::Propose { values, ph });
            }
            2 if self.is_leader(ph) => {
                if let Some(vlock) = self.quorum_supported(ph).into_iter().next() {
                    self.my_lock.insert(ph, vlock.clone());
                    directs.insert(Direct::Lock { v: vlock, ph });
                }
            }
            4 => {
                let candidates: Vec<V> = self
                    .leader_locks
                    .get(&ph)
                    .map(|locks| {
                        locks
                            .iter()
                            .filter(|v| self.propose_support(ph, v) >= self.quorum())
                            .cloned()
                            .collect()
                    })
                    .unwrap_or_default();
                if let Some(v) = candidates.into_iter().next() {
                    self.bcast.broadcast(Payload::Vote { v, ph });
                }
            }
            6 => {
                let quorum = self.quorum();
                let choice = self
                    .domain
                    .values()
                    .iter()
                    .find(|v| self.vote_support(ph, v) >= quorum)
                    .cloned();
                if let Some(v) = choice {
                    let stale: Vec<(V, u64)> = self
                        .locks
                        .iter()
                        .filter(|(w_, _)| *w_ == v)
                        .cloned()
                        .collect();
                    for pair in stale {
                        self.locks.remove(&pair);
                    }
                    self.locks.insert((v.clone(), ph));
                    directs.insert(Direct::Ack { v, ph });
                }
            }
            7 => {
                if let Some(v) = &self.decision {
                    directs.insert(Direct::Decide { v: v.clone() });
                }
            }
            _ => {}
        }

        vec![(Recipients::All, self.build_or_reuse(round, directs))]
    }

    fn receive(&mut self, round: Round, inbox: &Inbox<BoundedBundle<V>>) {
        let PhasePos { ph, w } = phase_pos(round);

        // Broadcast layer: bounded sets are small, so every bundle is
        // scanned in full — no pointer-identity shortcut needed.
        let mut inits: Vec<(Id, &Payload<V>)> = Vec::new();
        let mut echoes: Vec<(Id, &EchoItem<Payload<V>>)> = Vec::new();
        let mut watermarks: Vec<(Id, u64)> = Vec::new();
        for (src, bundle, _) in inbox.iter() {
            for p in &bundle.inits {
                inits.push((src, p));
            }
            for e in bundle.echoes.iter() {
                echoes.push((src, e));
            }
            watermarks.push((src, bundle.watermark));
        }
        let accepts = self.bcast.observe(round, &inits, &echoes, &watermarks);
        self.route_accepts(accepts);

        let proper_views: Vec<(Id, &BTreeSet<V>)> =
            inbox.iter().map(|(src, b, _)| (src, &*b.proper)).collect();
        self.update_proper(&proper_views);

        let leader = Id::phase_leader(ph, self.ell);
        if (2..=5).contains(&w) {
            for (src, bundle, _) in inbox.iter() {
                if src != leader {
                    continue;
                }
                for d in &bundle.directs {
                    if let Direct::Lock { v, ph: lph } = d {
                        if *lph == ph && self.domain.contains(v) {
                            self.leader_locks.entry(ph).or_default().insert(v.clone());
                        }
                    }
                }
            }
        }

        if w == 6 && self.is_leader(ph) && self.decision.is_none() {
            if let Some(vlock) = self.my_lock.get(&ph).cloned() {
                let ack_ids: BTreeSet<Id> = inbox
                    .ids_where(|b| {
                        b.directs
                            .iter()
                            .any(|d| matches!(d, Direct::Ack { v, ph: aph } if *v == vlock && *aph == ph))
                    })
                    .collect();
                if ack_ids.len() >= self.quorum() {
                    self.decide(vlock);
                }
            }
        }

        if w == 7 {
            if self.decision.is_none() {
                for v in self.domain.values() {
                    let ids: BTreeSet<Id> = inbox
                        .ids_where(|b| {
                            b.directs
                                .iter()
                                .any(|d| matches!(d, Direct::Decide { v: dv } if dv == v))
                        })
                        .collect();
                    if ids.len() >= self.t + 1 {
                        self.decide(v.clone());
                        break;
                    }
                }
            }
            self.release_locks();
            self.prune_phases(ph);
        }
    }

    fn decision(&self) -> Option<V> {
        self.decision.clone()
    }

    fn state_bits(&self) -> u64 {
        let mut bits = self.bcast.state_bits();
        bits += self.proper.len() as u64 * 64;
        bits += self.locks.len() as u64 * 128;
        for per_id in self.propose_acc.values() {
            for sets in per_id.values() {
                bits += 128;
                bits += sets.iter().map(|s| 64 + s.len() as u64 * 64).sum::<u64>();
            }
        }
        for per_v in self.vote_acc.values() {
            for ids in per_v.values() {
                bits += 64 + ids.len() as u64 * 16;
            }
        }
        bits += self
            .leader_locks
            .values()
            .map(|s| 64 + s.len() as u64 * 64)
            .sum::<u64>();
        bits += self.my_lock.len() as u64 * 128;
        bits
    }
}

/// A [`ProtocolFactory`] for [`BoundedAgreement`] processes.
#[derive(Clone, Debug)]
pub struct BoundedAgreementFactory<V> {
    n: usize,
    ell: usize,
    t: usize,
    domain: Domain<V>,
    window: u64,
}

impl<V: Value> BoundedAgreementFactory<V> {
    /// Creates a factory with the default pruning window.
    pub fn new(n: usize, ell: usize, t: usize, domain: Domain<V>) -> Self {
        BoundedAgreementFactory {
            n,
            ell,
            t,
            domain,
            window: DEFAULT_WINDOW_SUPERROUNDS,
        }
    }

    /// Overrides the pruning window (superrounds kept behind the stable
    /// superround); the per-phase retention scales with it.
    pub fn with_window(mut self, window: u64) -> Self {
        self.window = window;
        self
    }

    /// Conservative rounds-to-decision after stabilization.
    pub fn round_bound(&self) -> u64 {
        BoundedAgreement::<V>::round_bound(self.n, self.ell)
    }
}

impl<V: Value> ProtocolFactory for BoundedAgreementFactory<V> {
    type P = BoundedAgreement<V>;

    fn spawn(&self, id: Id, input: V) -> BoundedAgreement<V> {
        let mut p = BoundedAgreement::new(self.n, self.ell, self.t, self.domain.clone(), id, input);
        p.bcast = BoundedEchoBroadcast::with_window(self.ell, self.t, self.window);
        p.keep_phases = (self.window / 4).max(1);
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use homonym_core::{Counting, Envelope};

    #[test]
    fn thresholds_match_faithful() {
        let b: BoundedEchoBroadcast<&'static str> = BoundedEchoBroadcast::new(7, 2);
        assert_eq!(b.accept_threshold(), 5);
        assert_eq!(b.join_threshold(), 3);
    }

    /// A tiny synchronous network of the bounded broadcast layer alone.
    struct Net {
        procs: Vec<BoundedEchoBroadcast<&'static str>>,
        round: Round,
    }

    impl Net {
        fn new(ell: usize, t: usize, window: u64) -> Self {
            Net {
                procs: (0..ell)
                    .map(|_| BoundedEchoBroadcast::with_window(ell, t, window))
                    .collect(),
                round: Round::ZERO,
            }
        }

        fn step(&mut self) -> Vec<Vec<Accept<&'static str>>> {
            let r = self.round;
            let mut all_inits: Vec<(Id, &'static str)> = Vec::new();
            let mut all_echoes: Vec<(Id, EchoItem<&'static str>)> = Vec::new();
            let mut marks: Vec<(Id, u64)> = Vec::new();
            for (k, p) in self.procs.iter_mut().enumerate() {
                let (inits, echoes) = p.shared_to_send(r);
                let id = Id::from_index(k);
                for m in inits {
                    all_inits.push((id, m));
                }
                for e in echoes.iter() {
                    all_echoes.push((id, e.clone()));
                }
                marks.push((id, r.superround().index()));
            }
            let inits_ref: Vec<(Id, &&'static str)> =
                all_inits.iter().map(|(i, m)| (*i, m)).collect();
            let echoes_ref: Vec<(Id, &EchoItem<&'static str>)> =
                all_echoes.iter().map(|(i, e)| (*i, e)).collect();
            let out = self
                .procs
                .iter_mut()
                .map(|p| p.observe(r, &inits_ref, &echoes_ref, &marks))
                .collect();
            self.round = r.next();
            out
        }
    }

    #[test]
    fn correctness_accept_within_the_superround() {
        let mut net = Net::new(4, 1, 4);
        net.procs[0].broadcast("m");
        let accepts = net.step();
        assert!(accepts.iter().all(|a| a.is_empty()));
        let accepts = net.step();
        for per_proc in &accepts {
            assert_eq!(per_proc.len(), 1);
            assert_eq!(per_proc[0].payload, "m");
            assert_eq!(per_proc[0].src, Id::from_index(0));
            assert_eq!(per_proc[0].sr, 0);
        }
    }

    #[test]
    fn old_keys_are_pruned_and_state_plateaus() {
        // One broadcast per superround; with a window of 4 superrounds the
        // echoed-key count must stop growing once the horizon moves.
        let mut net = Net::new(4, 1, 4);
        let payloads: Vec<&'static str> = vec![
            "p0", "p1", "p2", "p3", "p4", "p5", "p6", "p7", "p8", "p9", "p10", "p11", "p12", "p13",
            "p14", "p15",
        ];
        let mut sizes = Vec::new();
        for sr in 0..16u64 {
            net.procs[0].broadcast(payloads[sr as usize]);
            net.step();
            net.step();
            sizes.push(net.procs[1].echoing_len());
        }
        let plateau = *sizes.last().unwrap();
        assert!(plateau <= 6, "window 4 must bound the echo set: {sizes:?}");
        assert!(net.procs[1].horizon() > 0, "horizon must have advanced");
        // The faithful layer would hold all 16 keys here.
        assert!(plateau < 16);
        // state_bits plateaus too (same value for the last few superrounds'
        // worth of sizes once stable).
        assert_eq!(sizes[14], sizes[15], "steady state must be flat");
    }

    #[test]
    fn byzantine_watermarks_cannot_fast_forward_the_horizon() {
        let mut p: BoundedEchoBroadcast<&'static str> = BoundedEchoBroadcast::with_window(4, 1, 2);
        // ℓ − t = 3 forged watermarks claiming superround 1000, fed at
        // round 0: capped at our superround (0), horizon stays 0.
        let marks: Vec<(Id, u64)> = (1..=3u16).map(|i| (Id::new(i), 1000)).collect();
        let _ = p.observe(Round::ZERO, &[], &[], &marks);
        assert_eq!(p.horizon(), 0);
    }

    #[test]
    fn future_superround_echoes_are_ignored() {
        let mut p: BoundedEchoBroadcast<&'static str> = BoundedEchoBroadcast::new(4, 1);
        let forged = EchoItem::new("future", 50, Id::new(2));
        let echoes: Vec<(Id, &EchoItem<&'static str>)> = vec![
            (Id::new(1), &forged),
            (Id::new(2), &forged),
            (Id::new(3), &forged),
        ];
        let accepts = p.observe(Round::ZERO, &[], &echoes, &[]);
        assert!(accepts.is_empty());
        assert_eq!(p.echoing_len(), 0);
    }

    /// Runs a fully synchronous, failure-free network of the bounded
    /// protocol and returns per-process decisions.
    fn run_clean(
        n: usize,
        ell: usize,
        t: usize,
        assignment: &[u16],
        inputs: &[bool],
        rounds: u64,
    ) -> Vec<Option<bool>> {
        let factory = BoundedAgreementFactory::new(n, ell, t, Domain::binary());
        let mut procs: Vec<BoundedAgreement<bool>> = (0..n)
            .map(|k| factory.spawn(Id::new(assignment[k]), inputs[k]))
            .collect();
        for r in 0..rounds {
            let round = Round::new(r);
            let outs: Vec<BoundedBundle<bool>> = procs
                .iter_mut()
                .map(|p| p.send(round).remove(0).1)
                .collect();
            let envs: Vec<Envelope<BoundedBundle<bool>>> = outs
                .iter()
                .enumerate()
                .map(|(k, b)| Envelope {
                    src: Id::new(assignment[k]),
                    msg: b.clone(),
                })
                .collect();
            let inbox = Inbox::collect(envs, Counting::Innumerate);
            for p in &mut procs {
                p.receive(round, &inbox);
            }
        }
        procs.iter().map(|p| p.decision()).collect()
    }

    #[test]
    fn unanimous_clean_run_decides_input() {
        for v in [false, true] {
            let decisions = run_clean(4, 4, 1, &[1, 2, 3, 4], &[v; 4], 8 * 6);
            for d in &decisions {
                assert_eq!(*d, Some(v));
            }
        }
    }

    #[test]
    fn split_inputs_agree() {
        let decisions = run_clean(4, 4, 1, &[1, 2, 3, 4], &[false, true, false, true], 8 * 6);
        assert!(decisions[0].is_some());
        assert!(decisions.iter().all(|d| *d == decisions[0]));
    }

    #[test]
    fn homonyms_with_different_inputs_still_agree() {
        let decisions = run_clean(
            7,
            6,
            1,
            &[1, 1, 2, 3, 4, 5, 6],
            &[false, true, true, false, true, false, true],
            8 * 8,
        );
        assert!(decisions[0].is_some(), "{decisions:?}");
        assert!(decisions.iter().all(|d| *d == decisions[0]));
    }

    #[test]
    fn bundle_watermark_tracks_superround() {
        let mut p = BoundedAgreement::new(4, 4, 1, Domain::binary(), Id::new(1), true);
        let b0 = p.send(Round::new(0)).remove(0).1;
        assert_eq!(b0.watermark(), 0);
        let b5 = p.send(Round::new(5)).remove(0).1;
        assert_eq!(b5.watermark(), 2);
    }

    #[test]
    fn state_bits_is_nonzero_and_bounded_long_run() {
        let factory = BoundedAgreementFactory::new(4, 4, 1, Domain::binary()).with_window(4);
        let mut procs: Vec<BoundedAgreement<bool>> = (1..=4u16)
            .map(|i| factory.spawn(Id::new(i), i % 2 == 0))
            .collect();
        let mut peak_mid = 0u64;
        let mut last = 0u64;
        for r in 0..8 * 40 {
            let round = Round::new(r);
            let outs: Vec<BoundedBundle<bool>> = procs
                .iter_mut()
                .map(|p| p.send(round).remove(0).1)
                .collect();
            let envs: Vec<Envelope<BoundedBundle<bool>>> = outs
                .iter()
                .enumerate()
                .map(|(k, b)| Envelope {
                    src: Id::new(k as u16 + 1),
                    msg: b.clone(),
                })
                .collect();
            let inbox = Inbox::collect(envs, Counting::Innumerate);
            for p in &mut procs {
                p.receive(round, &inbox);
            }
            let total: u64 = procs.iter().map(|p| p.state_bits()).sum();
            if r == 8 * 10 {
                peak_mid = total;
            }
            last = total;
        }
        assert!(last > 0);
        // 30 further phases must not grow the state (allow a little jitter
        // for in-flight per-phase tables).
        assert!(
            last <= peak_mid.saturating_add(peak_mid / 4),
            "state grew over 30 idle phases: mid={peak_mid} last={last}"
        );
    }
}
