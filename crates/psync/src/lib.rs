//! Partially synchronous Byzantine agreement with homonyms
//! (Sections 4 and 5 of the paper).
//!
//! Four components:
//!
//! * [`EchoBroadcast`] — the authenticated broadcast of Proposition 6
//!   (à la Srikanth–Toueg, generalized to identifiers): `⟨init m⟩` then
//!   `⟨echo m, r, i⟩`, joining at `ℓ − 2t` distinct identifiers and
//!   accepting at `ℓ − t`, with the correctness / unforgeability / relay
//!   guarantees the agreement protocol builds on. Requires `ℓ > 3t`.
//! * [`HomonymAgreement`] — the Figure 5 protocol: phases of four
//!   superrounds (propose / lock / vote / ack+decide), identifier quorums
//!   of size `ℓ − t`, homonym co-leaders, a voting superround, and a
//!   `t + 1`-identifier decide relay. Solves Byzantine agreement in the
//!   basic partially synchronous model whenever `2ℓ > n + 3t` (Theorem 13
//!   shows this is optimal), even for innumerate processes.
//! * [`MultBroadcast`] — the Figure 6 authenticated broadcast *with
//!   multiplicities* for numerate processes facing restricted Byzantine
//!   senders: `Accept(i, α, m, r)` carries an estimate `α` of how many
//!   holders of identifier `i` broadcast `m`, with the unicity /
//!   correctness / relay / unforgeability properties of Theorem 29.
//! * [`RestrictedAgreement`] — the Figure 7 protocol: the same phase
//!   skeleton as Figure 5 but with *witness counts* (`n − t` process
//!   multiplicities) instead of identifier quorums. Safety needs only
//!   `n > 3t`; liveness needs `ℓ > t` (Theorem 15 shows `ℓ > t` is
//!   optimal for numerate processes against restricted Byzantine
//!   processes).
//!
//! All protocols here implement [`Protocol`](homonym_core::Protocol): one
//! bundle message broadcast to all per round, as the round model requires
//! (a correct process sends at most one message per recipient per round).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod agreement;
mod bounded;
mod bounded_restricted;
mod broadcast;
#[cfg(test)]
mod codec_golden;
pub mod invariants;
mod mult_broadcast;
#[cfg(test)]
mod proptests;
mod restricted;

pub use agreement::{classic_dls_factory, AgreementFactory, Bundle, HomonymAgreement, Payload};
pub use bounded::{
    BoundedAgreement, BoundedAgreementFactory, BoundedBundle, BoundedEchoBroadcast,
    DEFAULT_WINDOW_SUPERROUNDS,
};
pub use bounded_restricted::{
    BoundedMultBroadcast, BoundedRestrictedAgreement, BoundedRestrictedBundle,
    BoundedRestrictedFactory,
};
pub use broadcast::{Accept, EchoBroadcast, EchoItem};
pub use mult_broadcast::{MultAccept, MultBroadcast, MultPart};
pub use restricted::{RestrictedAgreement, RestrictedBundle, RestrictedFactory, RestrictedPayload};
