//! Bounded-state variants of the Figure 6 multiplicity broadcast and the
//! Figure 7 restricted agreement — the numerate analogues of
//! [`crate::bounded`].
//!
//! Same scheme as the innumerate pair: every bundle carries the sender's
//! superround **watermark**; each round the receiver takes the largest
//! superround `s` such that messages totalling `n − t` multiplicity carry
//! a watermark `≥ s` (capped at its own superround), folds it into a
//! monotone *stable superround*, and prunes every counter, witness, and
//! outgoing echo tuple older than `stable − window` superrounds. At most
//! `t` of the `n − t` quorum can lie, so at least `n − 2t` correct
//! processes are genuinely past the stable superround, and in the
//! lock-step round model that makes everything below the horizon settled
//! history. The faithful layers remain untouched as the reference oracle.

use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

use homonym_core::codec::{DecodeError, Reader, WireDecode, WireEncode, Writer};
use homonym_core::{
    Domain, Id, Inbox, Message, Protocol, ProtocolFactory, Recipients, Round, Value,
};

use crate::agreement::{phase_pos, PhasePos};
use crate::bounded::DEFAULT_WINDOW_SUPERROUNDS;
use crate::mult_broadcast::{MultAccept, MultPart};
use crate::restricted::{Direct, RestrictedPayload};

/// The deep counter key, superround-first so the horizon sweep is an
/// ordered prefix removal: `(k, h, m)` for the Figure 6 counter
/// `a[h, m, k]`. No interner — an interner is append-only and would
/// reintroduce the O(history) growth.
type CKey<M> = (u64, Id, Arc<M>);

/// The bounded Figure 6 broadcast layer: the faithful
/// [`MultBroadcast`](crate::MultBroadcast) protocol restricted to a
/// sliding superround window. Counters below the watermark-quorum horizon
/// are discarded and no longer retransmitted, so the per-round wire part
/// is constant-size.
#[derive(Clone, Debug)]
pub struct BoundedMultBroadcast<M> {
    n: usize,
    t: usize,
    id: Id,
    /// Superrounds of history kept behind the stable superround.
    window: u64,
    /// `a[h, m, k]`, deep-keyed `(k, h, m)`.
    a: BTreeMap<CKey<M>, u64>,
    /// Broadcasts queued: payload → superround requested.
    pending: Vec<(M, u64)>,
    /// Monotone stable superround (watermark quorum; see module docs).
    stable: u64,
    /// Counters with `k` below this are pruned and ignored. Monotone.
    horizon: u64,
    /// Bumped whenever the emitted echo table changes (raise *or* prune).
    generation: u64,
}

impl<M: Message> BoundedMultBroadcast<M> {
    /// Creates the layer with the default window.
    pub fn new(n: usize, t: usize, id: Id) -> Self {
        Self::with_window(n, t, id, DEFAULT_WINDOW_SUPERROUNDS)
    }

    /// Creates the layer with an explicit window.
    pub fn with_window(n: usize, t: usize, id: Id, window: u64) -> Self {
        BoundedMultBroadcast {
            n,
            t,
            id,
            window,
            a: BTreeMap::new(),
            pending: Vec::new(),
            stable: 0,
            horizon: 0,
            generation: 0,
        }
    }

    /// The echo-raise threshold `n − 2t` (saturating, at least 1).
    pub fn raise_threshold(&self) -> u64 {
        (self.n.saturating_sub(2 * self.t) as u64).max(1)
    }

    /// The accept threshold `n − t`.
    pub fn accept_threshold(&self) -> u64 {
        self.n.saturating_sub(self.t) as u64
    }

    /// Queues `Broadcast(id, payload, sr)`.
    pub fn broadcast(&mut self, payload: M, sr: u64) {
        self.pending.push((payload, sr));
    }

    /// The wire part for this round: due `⟨init⟩` tuples plus an echo
    /// tuple for every non-zero in-window counter.
    pub fn part_to_send(&mut self, round: Round) -> MultPart<M> {
        let mut part = MultPart {
            inits: BTreeMap::new(),
            echoes: self
                .a
                .iter()
                .filter(|(_, &alpha)| alpha > 0)
                .map(|((k, h, m), &alpha)| ((*h, (**m).clone(), *k), alpha))
                .collect(),
        };
        if round.is_first_of_superround() {
            let sr = round.superround().index();
            let mut rest = Vec::new();
            for (m, want) in self.pending.drain(..) {
                if want <= sr {
                    part.inits.insert(m, sr);
                } else {
                    rest.push((m, want));
                }
            }
            self.pending = rest;
        }
        part
    }

    /// Whether a queued `Broadcast` would emit an `⟨init⟩` at `round`.
    pub(crate) fn init_due(&self, round: Round) -> bool {
        round.is_first_of_superround() && {
            let sr = round.superround().index();
            self.pending.iter().any(|&(_, want)| want <= sr)
        }
    }

    /// A counter that advances whenever the emitted echo table changes.
    pub(crate) fn generation(&self) -> u64 {
        self.generation
    }

    /// The current pruning horizon (diagnostic).
    pub fn horizon(&self) -> u64 {
        self.horizon
    }

    /// Figure 6's validity filter (identical to the faithful layer).
    fn is_valid(part: &MultPart<M>, round: Round) -> bool {
        let r = round.index();
        part.inits.values().all(|&sr| 2 * sr == r)
            && part.echoes.keys().all(|&(_, _, k)| r >= 2 * k)
    }

    /// Folds this round's watermark multiset — `(watermark,
    /// multiplicity)` pairs — into the stable superround and advances the
    /// horizon. Returns whether anything was pruned.
    fn advance_horizon(&mut self, now_sr: u64, watermarks: &[(u64, u64)]) {
        let mut marks: Vec<(u64, u64)> = watermarks
            .iter()
            .map(|&(wm, mult)| (wm.min(now_sr), mult))
            .collect();
        marks.sort_by_key(|&(wm, _)| std::cmp::Reverse(wm));
        let mut cum = 0u64;
        for &(wm, mult) in &marks {
            cum += mult;
            if cum >= self.accept_threshold() {
                self.stable = self.stable.max(wm);
                break;
            }
        }
        let new_horizon = self.stable.saturating_sub(self.window);
        if new_horizon > self.horizon {
            self.horizon = new_horizon;
            let before = self.a.len();
            let h = self.horizon;
            self.a.retain(|k, _| k.0 >= h);
            if self.a.len() != before {
                self.generation += 1;
            }
        }
    }

    /// Processes one round's received messages plus the senders'
    /// watermarks as `(watermark, multiplicity)` pairs. Returns the
    /// accepts performed (odd rounds only), in the faithful layer's
    /// `(src, payload, sr)` ascending order.
    pub fn observe(
        &mut self,
        round: Round,
        received: &[(Id, &MultPart<M>, u64)],
        watermarks: &[(u64, u64)],
    ) -> Vec<MultAccept<M>> {
        let r = round.index();
        self.advance_horizon(round.superround().index(), watermarks);
        let valid: Vec<(Id, &MultPart<M>, u64)> = received
            .iter()
            .filter(|(_, part, _)| Self::is_valid(part, round))
            .copied()
            .collect();

        // Initial counts from ⟨init⟩ tuples (even rounds). The init
        // superround is `r / 2` — always ≥ horizon.
        if r % 2 == 0 {
            let sr = r / 2;
            let mut init_counts: BTreeMap<(Id, Arc<M>), u64> = BTreeMap::new();
            for (src, part, mult) in &valid {
                for (m, &want) in &part.inits {
                    debug_assert_eq!(want, sr);
                    *init_counts.entry((*src, Arc::new(m.clone()))).or_insert(0) += mult;
                }
            }
            for ((h, m), alpha) in init_counts {
                if self.a.insert((sr, h, m), alpha) != Some(alpha) {
                    self.generation += 1;
                }
            }
        }

        // Raise counters / accept, skipping settled-history keys. The
        // validity filter (`r ≥ 2k`) already rejects future superrounds.
        let mut echo_support: BTreeMap<CKey<M>, Vec<(u64, u64)>> = BTreeMap::new();
        for (_, part, mult) in &valid {
            for ((h, m, k), &alpha) in &part.echoes {
                if *k < self.horizon {
                    continue;
                }
                echo_support
                    .entry((*k, *h, Arc::new(m.clone())))
                    .or_default()
                    .push((alpha, *mult));
            }
        }
        let mut accepts = Vec::new();
        for (key, mut support) in echo_support {
            support.sort_by_key(|&(alpha, _)| std::cmp::Reverse(alpha));
            let kth_largest = |threshold: u64| -> Option<u64> {
                let mut cum = 0u64;
                for &(alpha, mult) in &support {
                    cum += mult;
                    if cum >= threshold {
                        return Some(alpha);
                    }
                }
                None
            };
            if let Some(alpha1) = kth_largest(self.raise_threshold()) {
                let entry = self.a.entry(key.clone()).or_insert(0);
                if alpha1 > *entry {
                    *entry = alpha1;
                    self.generation += 1;
                }
            }
            if r % 2 == 1 {
                if let Some(alpha2) = kth_largest(self.accept_threshold()) {
                    accepts.push(MultAccept {
                        src: key.1,
                        alpha: alpha2,
                        payload: (*key.2).clone(),
                        sr: key.0,
                    });
                }
            }
        }
        accepts.sort_by(|a, b| (a.src, &a.payload, a.sr).cmp(&(b.src, &b.payload, b.sr)));
        accepts
    }

    /// The current counter `a[h, m, k]` (diagnostic).
    pub fn counter(&self, h: Id, m: &M, k: u64) -> u64 {
        self.a
            .get(&(k, h, Arc::new(m.clone())))
            .copied()
            .unwrap_or(0)
    }

    /// The identifier this layer authenticates as.
    pub fn id(&self) -> Id {
        self.id
    }

    /// Number of live counters (bounded by the window).
    pub fn counters_len(&self) -> usize {
        self.a.len()
    }

    /// Structural state-size estimate in bits (same per-entry scale as
    /// the faithful layer's accounting).
    pub fn state_bits(&self) -> u64 {
        (self.a.len() as u64) * 256 + (self.pending.len() as u64) * 128
    }
}

/// The bounded Figure 7 wire message: the faithful bundle's fields plus
/// the sender's superround watermark.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct BoundedRestrictedBundle<V> {
    part: MultPart<RestrictedPayload<V>>,
    directs: BTreeSet<Direct<V>>,
    proper: BTreeSet<V>,
    /// The sender's current superround.
    watermark: u64,
}

impl<V: Value + WireEncode> WireEncode for BoundedRestrictedBundle<V> {
    fn encode(&self, w: &mut Writer) {
        self.part.encode(w);
        self.directs.encode(w);
        self.proper.encode(w);
        self.watermark.encode(w);
    }
}

impl<V: Value + WireDecode> WireDecode for BoundedRestrictedBundle<V> {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(BoundedRestrictedBundle {
            part: MultPart::decode(r)?,
            directs: BTreeSet::decode(r)?,
            proper: BTreeSet::decode(r)?,
            watermark: u64::decode(r)?,
        })
    }
}

impl<V: Value> BoundedRestrictedBundle<V> {
    /// The `⟨ack, v, ph⟩` items this bundle carries.
    pub fn acks(&self) -> Vec<(&V, u64)> {
        self.directs
            .iter()
            .filter_map(|d| match d {
                Direct::Ack { v, ph } => Some((v, *ph)),
                _ => None,
            })
            .collect()
    }

    /// The proper set appended to this bundle.
    pub fn proper_view(&self) -> &BTreeSet<V> {
        &self.proper
    }

    /// The sender's superround watermark.
    pub fn watermark(&self) -> u64 {
        self.watermark
    }
}

/// The cached outgoing bundle; the watermark pins reuse to one superround.
#[derive(Clone, Debug)]
struct SendCache<V> {
    bundle: Arc<BoundedRestrictedBundle<V>>,
    generation: u64,
    proper_len: usize,
    watermark: u64,
    reusable: bool,
}

/// The bounded-state Figure 7 protocol: identical phase logic to
/// [`RestrictedAgreement`](crate::RestrictedAgreement) over the bounded
/// multiplicity broadcast, with the witness table pruned at the broadcast
/// horizon.
#[derive(Clone, Debug)]
pub struct BoundedRestrictedAgreement<V> {
    n: usize,
    ell: usize,
    t: usize,
    domain: Domain<V>,
    id: Id,

    proper: BTreeSet<V>,
    locks: BTreeSet<(V, u64)>,
    decision: Option<V>,

    bcast: BoundedMultBroadcast<RestrictedPayload<V>>,
    /// Cumulative witness table, deep-keyed superround-first:
    /// `(sr, payload)` → identifier → largest α accepted from it.
    witnesses: BTreeMap<(u64, RestrictedPayload<V>), BTreeMap<Id, u64>>,
    /// Lock values received from the leader identifier, per phase.
    leader_locks: BTreeMap<u64, BTreeSet<V>>,
    /// Phases of `leader_locks` kept behind the current one.
    keep_phases: u64,
    send_cache: Option<SendCache<V>>,
}

impl<V: Value> BoundedRestrictedAgreement<V> {
    /// Creates the automaton — same parameters and panics as
    /// [`RestrictedAgreement::new`](crate::RestrictedAgreement::new).
    pub fn new(n: usize, ell: usize, t: usize, domain: Domain<V>, id: Id, input: V) -> Self {
        assert!(domain.contains(&input), "input must belong to the domain");
        BoundedRestrictedAgreement {
            n,
            ell,
            t,
            id,
            proper: BTreeSet::from([input]),
            locks: BTreeSet::new(),
            decision: None,
            bcast: BoundedMultBroadcast::new(n, t, id),
            witnesses: BTreeMap::new(),
            leader_locks: BTreeMap::new(),
            keep_phases: DEFAULT_WINDOW_SUPERROUNDS / 4,
            send_cache: None,
            domain,
        }
    }

    /// The witness quorum `n − t`.
    pub fn quorum(&self) -> u64 {
        (self.n - self.t) as u64
    }

    /// The proper set (diagnostic).
    pub fn proper(&self) -> &BTreeSet<V> {
        &self.proper
    }

    /// Number of live witness keys (bounded by the window; the faithful
    /// table grows O(history)).
    pub fn witnesses_len(&self) -> usize {
        self.witnesses.len()
    }

    fn is_leader(&self, ph: u64) -> bool {
        Id::phase_leader(ph, self.ell) == self.id
    }

    fn witness_count(&self, payload: &RestrictedPayload<V>, sr: u64) -> u64 {
        self.witnesses
            .get(&(sr, payload.clone()))
            .map(|per_id| per_id.values().sum())
            .unwrap_or(0)
    }

    fn candidate_set(&self) -> BTreeSet<V> {
        self.proper
            .iter()
            .filter(|v| !self.locks.iter().any(|(w, _)| w != *v))
            .cloned()
            .collect()
    }

    fn witnessed_proposals(&self, ph: u64) -> Vec<V> {
        self.domain
            .values()
            .iter()
            .filter(|v| {
                self.witness_count(&RestrictedPayload::Propose((*v).clone()), 4 * ph)
                    >= self.quorum()
            })
            .cloned()
            .collect()
    }

    fn decide(&mut self, v: V) {
        if self.decision.is_none() {
            self.decision = Some(v);
        }
    }

    fn release_locks(&mut self) {
        let quorum = self.quorum();
        let overtaken: Vec<(V, u64)> = self
            .locks
            .iter()
            .filter(|(v1, ph1)| {
                self.witnesses.iter().any(|((sr, payload), per_id)| {
                    matches!(payload, RestrictedPayload::Vote(v2) if v2 != v1)
                        && *sr > 4 * ph1 + 2
                        && per_id.values().sum::<u64>() >= quorum
                })
            })
            .cloned()
            .collect();
        for pair in overtaken {
            self.locks.remove(&pair);
        }
    }

    /// Drops witnesses below the broadcast horizon and per-phase leader
    /// locks behind the retention window.
    fn prune(&mut self, ph: u64) {
        let h = self.bcast.horizon();
        self.witnesses.retain(|k, _| k.0 >= h);
        let keep = ph.saturating_sub(self.keep_phases);
        self.leader_locks.retain(|&p, _| p >= keep);
    }

    /// Conservative rounds to decision after stabilization.
    pub fn round_bound(ell: usize) -> u64 {
        crate::RestrictedAgreement::<V>::round_bound(ell)
    }
}

impl<V: Value> Protocol for BoundedRestrictedAgreement<V> {
    type Msg = BoundedRestrictedBundle<V>;
    type Value = V;

    fn id(&self) -> Id {
        self.id
    }

    fn send(&mut self, round: Round) -> Vec<(Recipients, BoundedRestrictedBundle<V>)> {
        self.send_shared(round)
            .into_iter()
            .map(|(recipients, bundle)| (recipients, (*bundle).clone()))
            .collect()
    }

    fn send_shared(&mut self, round: Round) -> Vec<(Recipients, Arc<BoundedRestrictedBundle<V>>)> {
        let PhasePos { ph, w } = phase_pos(round);
        let mut directs = BTreeSet::new();

        match w {
            0 => {
                for v in self.candidate_set() {
                    self.bcast.broadcast(RestrictedPayload::Propose(v), 4 * ph);
                }
            }
            2 if self.is_leader(ph) => {
                if let Some(v) = self.witnessed_proposals(ph).into_iter().next() {
                    directs.insert(Direct::Lock { v, ph });
                }
            }
            4 => {
                let candidate = self
                    .leader_locks
                    .get(&ph)
                    .into_iter()
                    .flatten()
                    .find(|v| {
                        self.witness_count(&RestrictedPayload::Propose((*v).clone()), 4 * ph)
                            >= self.quorum()
                    })
                    .cloned();
                if let Some(v) = candidate {
                    self.bcast.broadcast(RestrictedPayload::Vote(v), 4 * ph + 2);
                }
            }
            6 => {
                let choice = self
                    .domain
                    .values()
                    .iter()
                    .find(|v| {
                        self.witness_count(&RestrictedPayload::Vote((*v).clone()), 4 * ph + 2)
                            >= self.quorum()
                    })
                    .cloned();
                if let Some(v) = choice {
                    let stale: Vec<(V, u64)> = self
                        .locks
                        .iter()
                        .filter(|(w_, _)| *w_ == v)
                        .cloned()
                        .collect();
                    for pair in stale {
                        self.locks.remove(&pair);
                    }
                    self.locks.insert((v.clone(), ph));
                    directs.insert(Direct::Ack { v, ph });
                }
            }
            _ => {}
        }

        let watermark = round.superround().index();
        if directs.is_empty() && !self.bcast.init_due(round) {
            if let Some(cache) = &self.send_cache {
                if cache.reusable
                    && cache.generation == self.bcast.generation()
                    && cache.proper_len == self.proper.len()
                    && cache.watermark == watermark
                {
                    return vec![(Recipients::All, Arc::clone(&cache.bundle))];
                }
            }
        }
        let part = self.bcast.part_to_send(round);
        let reusable = part.inits.is_empty() && directs.is_empty();
        let bundle = Arc::new(BoundedRestrictedBundle {
            part,
            directs,
            proper: self.proper.clone(),
            watermark,
        });
        self.send_cache = Some(SendCache {
            bundle: Arc::clone(&bundle),
            generation: self.bcast.generation(),
            proper_len: self.proper.len(),
            watermark,
            reusable,
        });
        vec![(Recipients::All, bundle)]
    }

    fn receive(&mut self, round: Round, inbox: &Inbox<BoundedRestrictedBundle<V>>) {
        let PhasePos { ph, w } = phase_pos(round);

        let received: Vec<(Id, &MultPart<RestrictedPayload<V>>, u64)> = inbox
            .iter()
            .map(|(src, b, mult)| (src, &b.part, mult))
            .collect();
        let watermarks: Vec<(u64, u64)> = inbox
            .iter()
            .map(|(_, b, mult)| (b.watermark, mult))
            .collect();
        for accept in self.bcast.observe(round, &received, &watermarks) {
            let key = (accept.sr, accept.payload);
            let per_id = self.witnesses.entry(key).or_default();
            let entry = per_id.entry(accept.src).or_insert(0);
            *entry = (*entry).max(accept.alpha);
        }

        // Proper-set rules (numerate; identical to the faithful protocol).
        {
            let views: Vec<(u64, &BTreeSet<V>)> =
                inbox.iter().map(|(_, b, mult)| (mult, &b.proper)).collect();
            let total: u64 = views.iter().map(|&(c, _)| c).sum();
            let mut reached = false;
            for v in self.domain.values() {
                let support: u64 = views
                    .iter()
                    .filter(|(_, s)| s.contains(v))
                    .map(|&(c, _)| c)
                    .sum();
                if support >= self.t as u64 + 1 {
                    if !self.proper.contains(v) {
                        self.proper.insert(v.clone());
                    }
                    reached = true;
                }
            }
            if !reached && total >= 2 * self.t as u64 + 1 {
                for v in self.domain.values() {
                    if !self.proper.contains(v) {
                        self.proper.insert(v.clone());
                    }
                }
            }
        }

        if (2..=5).contains(&w) {
            let leader = Id::phase_leader(ph, self.ell);
            for (src, bundle, _) in inbox.iter() {
                if src != leader {
                    continue;
                }
                for d in &bundle.directs {
                    if let Direct::Lock { v, ph: lph } = d {
                        if *lph == ph && self.domain.contains(v) {
                            self.leader_locks.entry(ph).or_default().insert(v.clone());
                        }
                    }
                }
            }
        }

        if w == 6 && self.decision.is_none() {
            let quorum = self.quorum();
            let choice = self
                .domain
                .values()
                .iter()
                .find(|v| {
                    let acks = inbox.count_where(|b| {
                        b.directs.iter().any(
                            |d| matches!(d, Direct::Ack { v: av, ph: aph } if av == *v && *aph == ph),
                        )
                    });
                    acks >= quorum
                        && self.witness_count(&RestrictedPayload::Propose((*v).clone()), 4 * ph)
                            >= quorum
                })
                .cloned();
            if let Some(v) = choice {
                self.decide(v);
            }
        }

        if w == 7 {
            self.release_locks();
            self.prune(ph);
        }
    }

    fn decision(&self) -> Option<V> {
        self.decision.clone()
    }

    fn state_bits(&self) -> u64 {
        let mut bits = self.bcast.state_bits();
        bits += self.proper.len() as u64 * 64;
        bits += self.locks.len() as u64 * 128;
        for per_id in self.witnesses.values() {
            bits += 128 + per_id.len() as u64 * 80;
        }
        bits += self
            .leader_locks
            .values()
            .map(|s| 64 + s.len() as u64 * 64)
            .sum::<u64>();
        bits
    }
}

/// A [`ProtocolFactory`] for [`BoundedRestrictedAgreement`] processes.
#[derive(Clone, Debug)]
pub struct BoundedRestrictedFactory<V> {
    n: usize,
    ell: usize,
    t: usize,
    domain: Domain<V>,
    window: u64,
}

impl<V: Value> BoundedRestrictedFactory<V> {
    /// Creates a factory with the default pruning window.
    pub fn new(n: usize, ell: usize, t: usize, domain: Domain<V>) -> Self {
        BoundedRestrictedFactory {
            n,
            ell,
            t,
            domain,
            window: DEFAULT_WINDOW_SUPERROUNDS,
        }
    }

    /// Overrides the pruning window.
    pub fn with_window(mut self, window: u64) -> Self {
        self.window = window;
        self
    }

    /// Conservative rounds-to-decision after stabilization.
    pub fn round_bound(&self) -> u64 {
        BoundedRestrictedAgreement::<V>::round_bound(self.ell)
    }
}

impl<V: Value> ProtocolFactory for BoundedRestrictedFactory<V> {
    type P = BoundedRestrictedAgreement<V>;

    fn spawn(&self, id: Id, input: V) -> BoundedRestrictedAgreement<V> {
        let mut p = BoundedRestrictedAgreement::new(
            self.n,
            self.ell,
            self.t,
            self.domain.clone(),
            id,
            input,
        );
        p.bcast = BoundedMultBroadcast::with_window(self.n, self.t, id, self.window);
        p.keep_phases = (self.window / 4).max(1);
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use homonym_core::{Counting, Envelope};

    fn run_clean(
        n: usize,
        ell: usize,
        t: usize,
        assignment: &[u16],
        inputs: &[bool],
        rounds: u64,
    ) -> Vec<BoundedRestrictedAgreement<bool>> {
        let factory = BoundedRestrictedFactory::new(n, ell, t, Domain::binary());
        let mut procs: Vec<BoundedRestrictedAgreement<bool>> = (0..n)
            .map(|k| factory.spawn(Id::new(assignment[k]), inputs[k]))
            .collect();
        for r in 0..rounds {
            let round = Round::new(r);
            let outs: Vec<BoundedRestrictedBundle<bool>> = procs
                .iter_mut()
                .map(|p| p.send(round).remove(0).1)
                .collect();
            let envs: Vec<Envelope<BoundedRestrictedBundle<bool>>> = outs
                .iter()
                .enumerate()
                .map(|(k, b)| Envelope {
                    src: Id::new(assignment[k]),
                    msg: b.clone(),
                })
                .collect();
            let inbox = Inbox::collect(envs, Counting::Numerate);
            for p in &mut procs {
                p.receive(round, &inbox);
            }
        }
        procs
    }

    #[test]
    fn unanimous_anonymous_system_decides() {
        for v in [false, true] {
            let procs = run_clean(4, 2, 1, &[1, 2, 2, 2], &[v; 4], 8 * 5);
            for p in &procs {
                assert_eq!(p.decision(), Some(v));
            }
        }
    }

    #[test]
    fn split_inputs_agree() {
        let procs = run_clean(4, 2, 1, &[1, 1, 2, 2], &[false, true, false, true], 8 * 5);
        let d0 = procs[0].decision();
        assert!(d0.is_some());
        assert!(procs.iter().all(|p| p.decision() == d0));
    }

    #[test]
    fn fully_anonymous_needs_t_zero() {
        let procs = run_clean(3, 1, 0, &[1, 1, 1], &[true, true, true], 8 * 4);
        for p in &procs {
            assert_eq!(p.decision(), Some(true));
        }
    }

    #[test]
    fn counters_and_witnesses_plateau_on_long_runs() {
        // A long run with a tight window: the counter table and witness
        // table must stop growing once the horizon advances, where the
        // faithful tables grow every phase.
        let factory = BoundedRestrictedFactory::new(4, 2, 1, Domain::binary()).with_window(8);
        let mut procs: Vec<BoundedRestrictedAgreement<bool>> = [1u16, 1, 2, 2]
            .iter()
            .enumerate()
            .map(|(k, &id)| factory.spawn(Id::new(id), k % 2 == 0))
            .collect();
        let mut sizes = Vec::new();
        for r in 0..8 * 30 {
            let round = Round::new(r);
            let outs: Vec<BoundedRestrictedBundle<bool>> = procs
                .iter_mut()
                .map(|p| p.send(round).remove(0).1)
                .collect();
            let envs: Vec<Envelope<BoundedRestrictedBundle<bool>>> = outs
                .iter()
                .enumerate()
                .map(|(k, b)| Envelope {
                    src: procs[k].id(),
                    msg: b.clone(),
                })
                .collect();
            let inbox = Inbox::collect(envs, Counting::Numerate);
            for p in &mut procs {
                p.receive(round, &inbox);
            }
            if r % 8 == 7 {
                sizes.push((procs[0].bcast.counters_len(), procs[0].witnesses_len()));
            }
        }
        let (c_last, w_last) = *sizes.last().unwrap();
        let (c_mid, w_mid) = sizes[14];
        assert!(procs[0].bcast.horizon() > 0, "horizon must advance");
        assert!(c_last <= c_mid, "counters grew: {sizes:?}");
        assert!(w_last <= w_mid, "witnesses grew: {sizes:?}");
    }

    #[test]
    fn forged_watermarks_cannot_outrun_own_superround() {
        let mut b: BoundedMultBroadcast<&'static str> =
            BoundedMultBroadcast::with_window(4, 1, Id::new(1), 2);
        // n − t = 3 multiplicity claiming superround 1000 at round 0:
        // capped at superround 0, horizon stays 0.
        let _ = b.observe(Round::ZERO, &[], &[(1000, 3)]);
        assert_eq!(b.horizon(), 0);
    }
}
