//! Property-based tests: the broadcast-layer guarantees and the quorum
//! lemma, swept over random loss schedules, assignments and adversarial
//! injections (rather than the hand-picked schedules of the unit tests) —
//! plus the equivalence of the interned [`EchoBroadcast`] against a kept
//! copy of the original deep-keyed implementation.

use std::collections::{BTreeMap, BTreeSet};

use homonym_core::codec::{decode_frame, encode_frame, WireDecode, WireEncode};
use homonym_core::{Domain, Id, IdAssignment, Pid, Protocol, Round};
use proptest::prelude::*;

use crate::agreement::{Bundle, HomonymAgreement, Payload};
use crate::bounded::BoundedAgreement;
use crate::bounded_restricted::BoundedRestrictedAgreement;
use crate::broadcast::{EchoBroadcast, EchoItem};
use crate::invariants::sole_correct_witness;
use crate::mult_broadcast::{MultBroadcast, MultPart};
use crate::restricted::{RestrictedAgreement, RestrictedBundle};

// ------------------------- the reference (pre-interning) EchoBroadcast

/// The original deep-keyed echo-broadcast implementation, kept verbatim
/// (modulo the struct rename) as the behavioural reference for the
/// interned [`EchoBroadcast`]: maps keyed on owned `(M, u64, Id)` tuples,
/// `BTreeSet<Id>` evidence, full-table threshold sweep every round.
mod reference {
    use super::*;

    pub struct ReferenceEchoBroadcast<M> {
        ell: usize,
        t: usize,
        echoing: BTreeSet<(M, u64, Id)>,
        evidence: BTreeMap<(M, u64, Id), BTreeSet<Id>>,
        accepted: BTreeSet<(M, u64, Id)>,
        queue: Vec<M>,
    }

    impl<M: homonym_core::Message> ReferenceEchoBroadcast<M> {
        pub fn new(ell: usize, t: usize) -> Self {
            ReferenceEchoBroadcast {
                ell,
                t,
                echoing: BTreeSet::new(),
                evidence: BTreeMap::new(),
                accepted: BTreeSet::new(),
                queue: Vec::new(),
            }
        }

        pub fn accept_threshold(&self) -> usize {
            self.ell.saturating_sub(self.t)
        }

        pub fn join_threshold(&self) -> usize {
            self.ell.saturating_sub(2 * self.t).max(1)
        }

        pub fn broadcast(&mut self, payload: M) {
            self.queue.push(payload);
        }

        /// The original `to_send`, with the echoes as plain triples.
        #[allow(clippy::wrong_self_convention)] // mirrors the real API
        pub fn to_send(&mut self, round: Round) -> (Vec<M>, Vec<(M, u64, Id)>) {
            let inits = if round.is_first_of_superround() {
                std::mem::take(&mut self.queue)
            } else {
                Vec::new()
            };
            let echoes = self.echoing.iter().cloned().collect();
            (inits, echoes)
        }

        /// The original `observe`, with accepts as plain triples in the
        /// original report order (ascending evidence-key order).
        pub fn observe(
            &mut self,
            round: Round,
            inits: &[(Id, &M)],
            echoes: &[(Id, &(M, u64, Id))],
        ) -> Vec<(M, u64, Id)> {
            if round.is_first_of_superround() {
                let sr = round.superround().index();
                for &(src, payload) in inits {
                    self.echoing.insert((payload.clone(), sr, src));
                }
            }
            for &(echoer, item) in echoes {
                self.evidence
                    .entry(item.clone())
                    .or_default()
                    .insert(echoer);
            }
            let join = self.join_threshold();
            let accept = self.accept_threshold();
            let mut accepts = Vec::new();
            for (key, supporters) in &self.evidence {
                if supporters.len() >= join {
                    self.echoing.insert(key.clone());
                }
                if supporters.len() >= accept && self.accepted.insert(key.clone()) {
                    accepts.push(key.clone());
                }
            }
            accepts
        }

        pub fn has_accepted(&self, payload: &M, src: Id) -> bool {
            self.accepted
                .iter()
                .any(|(m, _, i)| m == payload && *i == src)
        }

        pub fn echoing_len(&self) -> usize {
            self.echoing.len()
        }
    }
}

/// The payload alphabet the equivalence sweep draws from.
const ALPHABET: [&str; 4] = ["alpha", "beta", "gamma", "delta"];

/// One scripted round of adversarial input: `(id, payload)` init claims
/// and `(echoer, (payload, sr, src))` echo items, in arbitrary order.
type ScriptedRound = (Vec<(u16, usize)>, Vec<(u16, (usize, u64, u16))>);

fn scripted_rounds(ell: usize, rounds: usize) -> impl Strategy<Value = Vec<ScriptedRound>> {
    let id = 1..=(ell as u16 + 1); // occasionally out-of-range ids too
    let inits = proptest::collection::vec((id.clone(), 0..ALPHABET.len()), 0..4);
    let echoes = proptest::collection::vec(
        (id.clone(), (0..ALPHABET.len(), 0u64..3, 1..=(ell as u16))),
        0..10,
    );
    proptest::collection::vec((inits, echoes), rounds)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The interned `EchoBroadcast` is observationally identical to the
    /// kept reference implementation: same outgoing items, same accepts
    /// in the same order, same `has_accepted` answers, same echo-set
    /// size — for every round of every adversarial injection schedule
    /// (arbitrary echo orders, duplicate items, out-of-range echoers,
    /// forged superrounds) and every queued-broadcast pattern.
    #[test]
    fn interned_matches_reference_echo_broadcast(
        ell in 3usize..7,
        t in 0usize..2,
        script in scripted_rounds(5, 10),
        bcast_rounds in proptest::collection::vec(0usize..10, 0..3),
    ) {
        let mut interned: EchoBroadcast<&'static str> = EchoBroadcast::new(ell, t);
        let mut reference = reference::ReferenceEchoBroadcast::new(ell, t);
        prop_assert_eq!(interned.join_threshold(), reference.join_threshold());
        prop_assert_eq!(interned.accept_threshold(), reference.accept_threshold());

        for (r, (init_script, echo_script)) in script.iter().enumerate() {
            let round = Round::new(r as u64);
            if bcast_rounds.contains(&r) {
                interned.broadcast(ALPHABET[r % ALPHABET.len()]);
                reference.broadcast(ALPHABET[r % ALPHABET.len()]);
            }

            // Send side: identical inits, identical echo triples.
            let (inits_a, echoes_a) = interned.to_send(round);
            let (inits_b, echoes_b) = reference.to_send(round);
            prop_assert_eq!(&inits_a, &inits_b);
            let triples_a: Vec<(&'static str, u64, Id)> = echoes_a
                .iter()
                .map(|e| (*e.payload, e.sr, e.src))
                .collect();
            prop_assert_eq!(&triples_a, &echoes_b, "round {}", r);

            // Receive side: the same scripted items, in the same
            // (arbitrary) order.
            let inits: Vec<(Id, &&'static str)> = init_script
                .iter()
                .map(|&(id, p)| (Id::new(id), &ALPHABET[p]))
                .collect();
            let items: Vec<EchoItem<&'static str>> = echo_script
                .iter()
                .map(|&(_, (p, sr, src))| EchoItem::new(ALPHABET[p], sr, Id::new(src)))
                .collect();
            let ref_items: Vec<(&'static str, u64, Id)> = echo_script
                .iter()
                .map(|&(_, (p, sr, src))| (ALPHABET[p], sr, Id::new(src)))
                .collect();
            let echoes_in: Vec<(Id, &EchoItem<&'static str>)> = echo_script
                .iter()
                .zip(&items)
                .map(|(&(echoer, _), item)| (Id::new(echoer), item))
                .collect();
            let ref_echoes_in: Vec<(Id, &(&'static str, u64, Id))> = echo_script
                .iter()
                .zip(&ref_items)
                .map(|(&(echoer, _), item)| (Id::new(echoer), item))
                .collect();

            let accepts_a = interned.observe(round, &inits, &echoes_in);
            let accepts_b = reference.observe(round, &inits, &ref_echoes_in);
            let accepts_a: Vec<(&'static str, u64, Id)> = accepts_a
                .into_iter()
                .map(|a| (a.payload, a.sr, a.src))
                .collect();
            prop_assert_eq!(&accepts_a, &accepts_b, "accepts diverge in round {}", r);

            prop_assert_eq!(interned.echoing_len(), reference.echoing_len());
            for payload in ALPHABET {
                for id in 1..=(ell as u16) {
                    prop_assert_eq!(
                        interned.has_accepted(&payload, Id::new(id)),
                        reference.has_accepted(&payload, Id::new(id)),
                        "has_accepted({}, {}) diverges", payload, id
                    );
                }
            }
        }
    }
}

// ---------------------------------------------------------------- Lemma 7

/// Generates `(t, ell, n, tail assignment, byz picks, excluded-id picks)`.
/// The first `ell` processes take identifiers `1..=ell` (covering every
/// identifier); the tail is assigned randomly.
fn lemma7_params() -> impl Strategy<
    Value = (
        usize,
        usize,
        usize,
        Vec<u16>,
        Vec<usize>,
        Vec<u16>,
        Vec<u16>,
    ),
> {
    (1usize..=2)
        .prop_flat_map(|t| {
            (Just(t), (3 * t + 1)..=(3 * t + 4)).prop_flat_map(move |(t, ell)| {
                let n_hi = 2 * ell - 3 * t - 1; // largest n with 2ℓ > n + 3t
                (Just(t), Just(ell), ell..=n_hi)
            })
        })
        .prop_flat_map(|(t, ell, n)| {
            (
                Just(t),
                Just(ell),
                Just(n),
                proptest::collection::vec(1..=ell as u16, n - ell),
                proptest::collection::vec(0..n, t),
                proptest::collection::vec(1..=ell as u16, 0..=t),
                proptest::collection::vec(1..=ell as u16, 0..=t),
            )
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Lemma 7: whenever `2ℓ > n + 3t`, any two identifier sets of size
    /// `≥ ℓ − t` intersect in an identifier held by exactly one process,
    /// which is correct — for **every** assignment of the tail and every
    /// Byzantine placement.
    #[test]
    fn lemma7_witness_exists_whenever_bound_holds(
        (t, ell, n, tail, byz_picks, excl_a, excl_b) in lemma7_params()
    ) {
        prop_assume!(2 * ell > n + 3 * t);
        let mut ids: Vec<Id> = (1..=ell as u16).map(Id::new).collect();
        ids.extend(tail.iter().map(|&i| Id::new(i)));
        let assignment = IdAssignment::new(ell, ids).expect("every id covered");
        let byz: BTreeSet<Pid> = byz_picks.into_iter().map(Pid::new).collect();
        prop_assume!(byz.len() <= t);

        let quorum_from = |excl: &[u16]| -> BTreeSet<Id> {
            let excluded: BTreeSet<Id> = excl.iter().map(|&i| Id::new(i)).collect();
            (1..=ell as u16)
                .map(Id::new)
                .filter(|id| !excluded.contains(id))
                .collect()
        };
        let a = quorum_from(&excl_a);
        let b = quorum_from(&excl_b);
        prop_assert!(a.len() >= ell - t && b.len() >= ell - t);

        let witness = sole_correct_witness(&assignment, &byz, &a, &b);
        prop_assert!(
            witness.is_some(),
            "no sole-correct witness: n={n} ell={ell} t={t} a={a:?} b={b:?} byz={byz:?}"
        );
    }
}

// ------------------------------------------- EchoBroadcast under loss

/// A lossy synchronous network over the echo-broadcast layer alone:
/// `assignment[k]` is process `k`'s identifier; `(round, from, to)`
/// triples in `drops` are lost; everything from round `gst` on is
/// delivered.
struct LossyEchoNet {
    procs: Vec<EchoBroadcast<&'static str>>,
    assignment: Vec<Id>,
    drops: BTreeSet<(u64, usize, usize)>,
    round: u64,
    /// Per process: `(payload, src)` → superround of acceptance.
    accepted: Vec<BTreeMap<(&'static str, Id), u64>>,
}

impl LossyEchoNet {
    fn new(ell: usize, t: usize, assignment: &[u16], drops: BTreeSet<(u64, usize, usize)>) -> Self {
        let n = assignment.len();
        LossyEchoNet {
            procs: (0..n).map(|_| EchoBroadcast::new(ell, t)).collect(),
            assignment: assignment.iter().map(|&i| Id::new(i)).collect(),
            drops,
            round: 0,
            accepted: vec![BTreeMap::new(); n],
        }
    }

    /// One round; `forged_echoes` are delivered to every process, from
    /// the given (Byzantine) identifiers, immune to drops.
    fn step(&mut self, forged_echoes: &[(Id, EchoItem<&'static str>)]) {
        let r = Round::new(self.round);
        let sends: Vec<(Vec<&'static str>, Vec<EchoItem<&'static str>>)> =
            self.procs.iter_mut().map(|p| p.to_send(r)).collect();
        for k in 0..self.procs.len() {
            let mut inits: Vec<(Id, &&'static str)> = Vec::new();
            let mut echoes: Vec<(Id, &EchoItem<&'static str>)> = Vec::new();
            for (j, (j_inits, j_echoes)) in sends.iter().enumerate() {
                if j != k && self.drops.contains(&(self.round, j, k)) {
                    continue;
                }
                for m in j_inits {
                    inits.push((self.assignment[j], m));
                }
                for e in j_echoes {
                    echoes.push((self.assignment[j], e));
                }
            }
            for (id, e) in forged_echoes {
                echoes.push((*id, e));
            }
            for accept in self.procs[k].observe(r, &inits, &echoes) {
                self.accepted[k]
                    .entry((accept.payload, accept.src))
                    .or_insert(self.round / 2);
            }
        }
        self.round += 1;
    }
}

fn echo_drops(gst_sr: u64, n: usize) -> impl Strategy<Value = BTreeSet<(u64, usize, usize)>> {
    proptest::collection::btree_set(
        (0..gst_sr.max(1) * 2, 0..n, 0..n),
        0..(gst_sr as usize * n * n).max(1),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Correctness + relay across random pre-stabilization loss: a
    /// broadcast performed *at* stabilization is accepted by everyone in
    /// that very superround; a broadcast performed *before* it obeys the
    /// relay bound (if anyone accepts at superround `r`, everyone accepts
    /// by `max(r + 1, T)`).
    #[test]
    fn echo_correctness_and_relay_under_random_loss(
        gst_sr in 1u64..4,
        drops in echo_drops(3, 5),
        early_src in 0usize..5,
    ) {
        // n = 5, ℓ = 4, t = 1: identifier 1 is a homonym pair (procs 0, 4).
        let assignment = [1u16, 2, 3, 4, 1];
        // Loss only before stabilization — that is what "stabilization"
        // means in the basic model.
        let drops: BTreeSet<(u64, usize, usize)> =
            drops.into_iter().filter(|&(r, _, _)| r < gst_sr * 2).collect();
        let mut net = LossyEchoNet::new(4, 1, &assignment, drops);

        // An early broadcast, exposed to the loss.
        net.procs[early_src].broadcast("early");
        let early_id = Id::new(assignment[early_src]);

        // Run the lossy prefix.
        for _ in 0..(gst_sr * 2) {
            net.step(&[]);
        }
        // Broadcast "fresh" exactly at stabilization.
        net.procs[2].broadcast("fresh");
        for _ in 0..8 {
            net.step(&[]);
        }

        // Correctness: everyone accepted ("fresh", id 3) in superround
        // gst_sr itself.
        for (k, acc) in net.accepted.iter().enumerate() {
            let sr = acc.get(&("fresh", Id::new(3)));
            prop_assert_eq!(
                sr, Some(&gst_sr),
                "proc {} accepted fresh at {:?}, not at stabilization {}", k, sr, gst_sr
            );
        }

        // Relay: if anyone accepted the early broadcast, everyone did, by
        // max(first + 1, T).
        let accept_srs: Vec<u64> = net
            .accepted
            .iter()
            .filter_map(|acc| acc.get(&("early", early_id)).copied())
            .collect();
        if let Some(&first) = accept_srs.iter().min() {
            prop_assert_eq!(accept_srs.len(), net.procs.len(), "relay must reach everyone");
            let deadline = (first + 1).max(gst_sr);
            for &sr in &accept_srs {
                prop_assert!(sr <= deadline, "accept at {sr} after relay deadline {deadline}");
            }
        }
    }

    /// Unforgeability: if no holder of identifier `i` broadcasts, then no
    /// flood of forged echo items from `t` Byzantine identifiers — across
    /// any loss schedule — makes any correct process accept from `i`.
    #[test]
    fn echo_unforgeability_under_forged_echo_floods(
        drops in echo_drops(2, 4),
        byz_id in 1u16..=4,
        victim_id in 1u16..=4,
        claimed_sr in 0u64..3,
    ) {
        prop_assume!(byz_id != victim_id);
        let assignment = [1u16, 2, 3, 4];
        let mut net = LossyEchoNet::new(4, 1, &assignment, drops);
        let forged = EchoItem::new("forged", claimed_sr, Id::new(victim_id));
        for _ in 0..10 {
            net.step(&[(Id::new(byz_id), forged.clone())]);
        }
        for acc in &net.accepted {
            prop_assert!(
                !acc.contains_key(&("forged", Id::new(victim_id))),
                "forged message accepted from innocent identifier {victim_id}"
            );
        }
    }
}

// ------------------------------------- MultBroadcast α-bounds under loss

/// A lossy network over the Figure 6 layer: numerate delivery (identical
/// parts from homonyms aggregate into multiplicities), per-receiver drops,
/// plus forged parts from a Byzantine identifier.
struct LossyMultNet {
    procs: Vec<MultBroadcast<&'static str>>,
    assignment: Vec<Id>,
    /// The Byzantine process: its correct automaton is silenced; the
    /// forged part replaces it (so each round it sends exactly one
    /// message per recipient — the restricted model).
    byz: usize,
    drops: BTreeSet<(u64, usize, usize)>,
    round: u64,
    /// Per process: accepted `(src, alpha, sr)` triples for "m".
    accepted: Vec<Vec<(Id, u64, u64)>>,
}

impl LossyMultNet {
    fn new(
        n: usize,
        t: usize,
        assignment: &[u16],
        byz: usize,
        drops: BTreeSet<(u64, usize, usize)>,
    ) -> Self {
        let assignment: Vec<Id> = assignment.iter().map(|&i| Id::new(i)).collect();
        LossyMultNet {
            procs: (0..n)
                .map(|k| MultBroadcast::new(n, t, assignment[k]))
                .collect(),
            assignment: assignment.clone(),
            byz,
            drops,
            round: 0,
            accepted: vec![Vec::new(); n],
        }
    }

    fn step(&mut self, forged: Option<MultPart<&'static str>>) {
        let r = Round::new(self.round);
        let parts: Vec<MultPart<&'static str>> =
            self.procs.iter_mut().map(|p| p.part_to_send(r)).collect();
        for k in 0..self.procs.len() {
            // Numerate inbox: aggregate surviving identical (id, part)s.
            let mut multiset: BTreeMap<(Id, MultPart<&'static str>), u64> = BTreeMap::new();
            for (j, part) in parts.iter().enumerate() {
                if j == self.byz {
                    continue; // silenced: the forged part replaces it
                }
                if j != k && self.drops.contains(&(self.round, j, k)) {
                    continue;
                }
                *multiset
                    .entry((self.assignment[j], part.clone()))
                    .or_insert(0) += 1;
            }
            if let Some(part) = &forged {
                // Byzantine traffic rides out the loss (worst case).
                *multiset
                    .entry((self.assignment[self.byz], part.clone()))
                    .or_insert(0) += 1;
            }
            let received: Vec<(Id, &MultPart<&'static str>, u64)> = multiset
                .iter()
                .map(|((id, part), &mult)| (*id, part, mult))
                .collect();
            for accept in self.procs[k].observe(r, &received) {
                if accept.payload == "m" {
                    self.accepted[k].push((accept.src, accept.alpha, accept.sr));
                }
            }
        }
        self.round += 1;
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Figure 6's α bounds (Lemmas 23–28) under random loss and forged
    /// parts: for identifier 1, broadcast by its α = 2 correct holders
    /// with f₁ = 0 Byzantine holders, every accept reports exactly α = 2;
    /// for the Byzantine identifier (α = 0 correct, f = 1), every accept
    /// reports α ≤ 1.
    #[test]
    fn mult_alpha_bounds_under_loss_and_forgery(
        gst_sr in 1u64..3,
        drops in echo_drops(2, 5),
        claimed_alpha in 2u64..20,
    ) {
        // Processes 0, 1 hold identifier 1; 2, 3, 4 hold 2, 3, 4.
        // Process 4 is Byzantine: its automaton is silenced and a forged
        // part carrying identifier 4 goes out instead (restricted: one
        // message per recipient per round).
        let assignment = [1u16, 1, 2, 3, 4];
        let (n, t) = (5, 1);
        let byz_id = Id::new(4);
        let drops: BTreeSet<(u64, usize, usize)> =
            drops.into_iter().filter(|&(r, _, _)| r < gst_sr * 2).collect();
        let mut net = LossyMultNet::new(n, t, &assignment, 4, drops);

        // Both holders of identifier 1 broadcast "m" at stabilization.
        net.procs[0].broadcast("m", gst_sr);
        net.procs[1].broadcast("m", gst_sr);

        for _ in 0..(gst_sr * 2 + 10) {
            // The forger floods inflated echo claims for the honest
            // identifier 1 and fabricated inits for itself, every round.
            let round_sr = net.round / 2;
            let forged = MultPart {
                inits: if net.round % 2 == 0 {
                    [("m", round_sr)].into_iter().collect()
                } else {
                    BTreeMap::new()
                },
                echoes: [
                    ((Id::new(1), "m", round_sr), claimed_alpha),
                    ((byz_id, "m", round_sr), claimed_alpha),
                ]
                .into_iter()
                .collect(),
            };
            net.step(Some(forged));
        }

        for (k, accepts) in net.accepted.iter().enumerate().take(4) {
            // Unforgeability (Lemma 28): α′ ≤ α + fᵢ.
            for &(src, alpha, _) in accepts {
                if src == Id::new(1) {
                    prop_assert!(alpha <= 2, "proc {k}: α = {alpha} > 2 for honest id 1");
                } else if src == byz_id {
                    prop_assert!(alpha <= 1, "proc {k}: α = {alpha} > 1 for byz id 4");
                }
            }
            // Correctness (Lemma 26): at stabilization the honest
            // broadcast is accepted with full multiplicity — α exactly 2,
            // by the bound above.
            prop_assert!(
                accepts
                    .iter()
                    .any(|&(src, alpha, sr)| src == Id::new(1) && alpha == 2 && sr == gst_sr),
                "correct proc {k} must accept (id 1, m, sr {gst_sr}) with α = 2: {accepts:?}"
            );
        }
    }
}

// ------------------------------------------------------ codec round-trips

/// Round-trips one message through the frame codec.
fn roundtrip<M: WireEncode + WireDecode>(msg: &M) -> M {
    decode_frame(&encode_frame(msg)).expect("own frames must decode")
}

/// One of the alphabet payloads as an owned (decodable) string.
fn alpha_string() -> impl Strategy<Value = String> {
    (0..ALPHABET.len()).prop_map(|i| ALPHABET[i].to_string())
}

fn payload_strategy() -> impl Strategy<Value = Payload<String>> {
    (
        0usize..2,
        proptest::collection::btree_set(alpha_string(), 0..4),
        alpha_string(),
        0u64..9,
    )
        .prop_map(|(tag, values, v, ph)| {
            if tag == 0 {
                Payload::Propose { values, ph }
            } else {
                Payload::Vote { v, ph }
            }
        })
}

/// Drives `n = ℓ = 4, t = 1` agreement processes over the given inputs
/// with per-round loss, handing every emitted wire message to `check`.
fn drive_agreement<P: Protocol>(
    procs: &mut [P],
    rounds: u64,
    drops: &BTreeSet<(u64, usize, usize)>,
    mut check: impl FnMut(&P::Msg),
) {
    for r in 0..rounds {
        let round = Round::new(r);
        let sends: Vec<Vec<(homonym_core::Recipients, P::Msg)>> =
            procs.iter_mut().map(|p| p.send(round)).collect();
        for out in &sends {
            for (_, msg) in out {
                check(msg);
            }
        }
        for (k, proc_) in procs.iter_mut().enumerate() {
            let inbox = homonym_core::Inbox::collect(
                sends.iter().enumerate().flat_map(|(j, out)| {
                    let dropped = j != k && drops.contains(&(r, j, k));
                    out.iter().filter(move |_| !dropped).map(move |(_, msg)| {
                        homonym_core::Envelope {
                            src: Id::from_index(j),
                            msg: msg.clone(),
                        }
                    })
                }),
                homonym_core::Counting::Innumerate,
            );
            proc_.receive(round, &inbox);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// `decode(encode(m)) == m` for the broadcast-layer payloads.
    #[test]
    fn payload_roundtrips(payload in payload_strategy()) {
        prop_assert_eq!(roundtrip(&payload), payload);
    }

    /// `decode(encode(m)) == m` for echo items.
    #[test]
    fn echo_item_roundtrips(
        payload in alpha_string(),
        sr in 0u64..100,
        src in 1u16..=8,
    ) {
        let item = EchoItem::new(payload, sr, Id::new(src));
        prop_assert_eq!(roundtrip(&item), item);
    }

    /// `decode(encode(m)) == m` for Figure 6 multiplicity parts.
    #[test]
    fn mult_part_roundtrips(
        inits in proptest::collection::btree_map(alpha_string(), 0u64..5, 0..4),
        echoes in proptest::collection::btree_map(
            ((1u16..=6).prop_map(Id::new), alpha_string(), 0u64..5),
            1u64..9,
            0..6,
        ),
    ) {
        let part = MultPart { inits, echoes };
        prop_assert_eq!(roundtrip(&part), part);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// `decode(encode(b)) == b` for every bundle a real Figure 5 run
    /// emits under random inputs and pre-stabilization loss.
    #[test]
    fn bundle_roundtrips(
        inputs in proptest::collection::vec(any::<bool>(), 4),
        drops in echo_drops(2, 4),
        rounds in 8u64..20,
    ) {
        let domain = Domain::binary();
        let mut procs: Vec<HomonymAgreement<bool>> = (0..4)
            .map(|k| HomonymAgreement::new(4, 4, 1, domain.clone(), Id::from_index(k), inputs[k]))
            .collect();
        drive_agreement(&mut procs, rounds, &drops, |bundle: &Bundle<bool>| {
            assert_eq!(&roundtrip(bundle), bundle);
        });
    }

    /// `decode(encode(b)) == b` for every bundle a real Figure 7
    /// (restricted) run emits under random inputs and loss.
    #[test]
    fn restricted_bundle_roundtrips(
        inputs in proptest::collection::vec(any::<bool>(), 4),
        drops in echo_drops(2, 4),
        rounds in 8u64..20,
    ) {
        let domain = Domain::binary();
        let mut procs: Vec<RestrictedAgreement<bool>> = (0..4)
            .map(|k| {
                RestrictedAgreement::new(4, 4, 1, domain.clone(), Id::from_index(k), inputs[k])
            })
            .collect();
        drive_agreement(&mut procs, rounds, &drops, |bundle: &RestrictedBundle<bool>| {
            assert_eq!(&roundtrip(bundle), bundle);
        });
    }
}

// ------------------------- bounded-vs-faithful equivalence

/// Drives `procs` over `rounds` lock-step rounds under a structural
/// adversarial script and returns each process's first decision as
/// `(round, value)`.
///
/// The script is *structural* — per-edge loss via `drops`, plus an
/// optional replay adversary `(byz, victim)` that substitutes `victim`'s
/// outgoing messages for `byz`'s own every round — so the identical
/// script can be replayed against the faithful and the bounded protocol
/// stacks even though their wire types differ.
fn run_script<P: Protocol>(
    procs: &mut [P],
    rounds: u64,
    assignment: &[Id],
    counting: homonym_core::Counting,
    drops: &BTreeSet<(u64, usize, usize)>,
    byz_replay: Option<(usize, usize)>,
) -> Vec<Option<(u64, P::Value)>> {
    let mut decided: Vec<Option<(u64, P::Value)>> = procs.iter().map(|_| None).collect();
    for r in 0..rounds {
        let round = Round::new(r);
        let mut sends: Vec<Vec<(homonym_core::Recipients, P::Msg)>> =
            procs.iter_mut().map(|p| p.send(round)).collect();
        if let Some((byz, victim)) = byz_replay {
            sends[byz] = sends[victim].clone();
        }
        for (k, proc_) in procs.iter_mut().enumerate() {
            let inbox = homonym_core::Inbox::collect(
                sends.iter().enumerate().flat_map(|(j, out)| {
                    let dropped = j != k && drops.contains(&(r, j, k));
                    out.iter().filter(move |_| !dropped).map(move |(_, msg)| {
                        homonym_core::Envelope {
                            src: assignment[j],
                            msg: msg.clone(),
                        }
                    })
                }),
                counting,
            );
            proc_.receive(round, &inbox);
            if decided[k].is_none() {
                if let Some(v) = proc_.decision() {
                    decided[k] = Some((r, v));
                }
            }
        }
    }
    decided
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The bounded Figure 5 stack decides **identically** to the faithful
    /// one — same value and same first-decision round at every process —
    /// under random inputs, random pre-stabilization loss and an optional
    /// replay adversary.
    #[test]
    fn bounded_agreement_matches_faithful(
        inputs in proptest::collection::vec(any::<bool>(), 4),
        drops in echo_drops(3, 4),
        byz in (0u8..3, 0usize..4, 0usize..4)
            .prop_map(|(tag, bz, victim)| (tag == 0).then_some((bz, victim))),
    ) {
        let domain = Domain::binary();
        let ids: Vec<Id> = (0..4).map(Id::from_index).collect();
        let mut faithful: Vec<HomonymAgreement<bool>> = (0..4)
            .map(|k| HomonymAgreement::new(4, 4, 1, domain.clone(), ids[k], inputs[k]))
            .collect();
        let mut bounded: Vec<BoundedAgreement<bool>> = (0..4)
            .map(|k| BoundedAgreement::new(4, 4, 1, domain.clone(), ids[k], inputs[k]))
            .collect();
        let rounds = 80;
        let f = run_script(
            &mut faithful, rounds, &ids, homonym_core::Counting::Innumerate, &drops, byz,
        );
        let b = run_script(
            &mut bounded, rounds, &ids, homonym_core::Counting::Innumerate, &drops, byz,
        );
        prop_assert_eq!(&f, &b, "bounded and faithful Figure 5 runs diverged");
        for (k, d) in f.iter().enumerate() {
            if byz.map_or(true, |(bz, _)| bz != k) {
                prop_assert!(d.is_some(), "correct proc {} never decided", k);
            }
        }
    }

    /// Same equivalence for the numerate Figure 7 stack, run under a
    /// genuine homonym assignment (n = 4, ℓ = 2, t = 1).
    #[test]
    fn bounded_restricted_matches_faithful(
        inputs in proptest::collection::vec(any::<bool>(), 4),
        drops in echo_drops(3, 4),
        byz in (0u8..3, 0usize..4, 0usize..4)
            .prop_map(|(tag, bz, victim)| (tag == 0).then_some((bz, victim))),
    ) {
        let domain = Domain::binary();
        let assignment = [Id::new(1), Id::new(1), Id::new(2), Id::new(2)];
        let mut faithful: Vec<RestrictedAgreement<bool>> = (0..4)
            .map(|k| {
                RestrictedAgreement::new(4, 2, 1, domain.clone(), assignment[k], inputs[k])
            })
            .collect();
        let mut bounded: Vec<BoundedRestrictedAgreement<bool>> = (0..4)
            .map(|k| {
                BoundedRestrictedAgreement::new(4, 2, 1, domain.clone(), assignment[k], inputs[k])
            })
            .collect();
        let rounds = 80;
        let f = run_script(
            &mut faithful, rounds, &assignment, homonym_core::Counting::Numerate, &drops, byz,
        );
        let b = run_script(
            &mut bounded, rounds, &assignment, homonym_core::Counting::Numerate, &drops, byz,
        );
        prop_assert_eq!(&f, &b, "bounded and faithful Figure 7 runs diverged");
    }
}

/// Long-horizon memory shape: over hundreds of rounds the faithful
/// stack's evidence state grows without bound (every phase mints new
/// `(payload, superround)` keys that are never dropped) while the
/// bounded stack plateaus once the watermark horizon starts pruning.
#[test]
fn bounded_state_is_flat_where_faithful_grows() {
    let domain = Domain::binary();
    let ids: Vec<Id> = (0..4).map(Id::from_index).collect();
    let mut faithful: Vec<HomonymAgreement<bool>> = (0..4)
        .map(|k| HomonymAgreement::new(4, 4, 1, domain.clone(), ids[k], k % 2 == 0))
        .collect();
    let mut bounded: Vec<BoundedAgreement<bool>> = (0..4)
        .map(|k| BoundedAgreement::new(4, 4, 1, domain.clone(), ids[k], k % 2 == 0))
        .collect();
    // Lossless all-to-all delivery of one round.
    fn step_round<P: Protocol>(procs: &mut [P], round: Round, ids: &[Id]) {
        let sends: Vec<Vec<(homonym_core::Recipients, P::Msg)>> =
            procs.iter_mut().map(|p| p.send(round)).collect();
        for proc_ in procs.iter_mut() {
            let inbox = homonym_core::Inbox::collect(
                sends.iter().enumerate().flat_map(|(j, out)| {
                    out.iter().map(move |(_, msg)| homonym_core::Envelope {
                        src: ids[j],
                        msg: msg.clone(),
                    })
                }),
                homonym_core::Counting::Innumerate,
            );
            proc_.receive(round, &inbox);
        }
    }
    let mut samples: Vec<(u64, u64)> = Vec::new(); // (faithful, bounded) bits
    for r in 0..400u64 {
        let round = Round::new(r);
        step_round(&mut faithful, round, &ids);
        step_round(&mut bounded, round, &ids);
        if r == 199 || r == 399 {
            samples.push((
                faithful.iter().map(|p| p.state_bits()).sum(),
                bounded.iter().map(|p| p.state_bits()).sum(),
            ));
        }
    }
    let (f_mid, b_mid) = samples[0];
    let (f_end, b_end) = samples[1];
    assert!(
        f_end > f_mid,
        "faithful state should keep growing: {f_mid} -> {f_end}"
    );
    assert!(
        b_end <= b_mid,
        "bounded state should plateau: {b_mid} -> {b_end}"
    );
    assert!(
        f_end > 2 * b_end,
        "bounded steady state should be far below faithful ({b_end} vs {f_end})"
    );
}
