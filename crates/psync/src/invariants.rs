//! Executable forms of the paper's safety lemmas.
//!
//! The correctness proofs of the Figure 5 and Figure 7 protocols rest on a
//! small number of state invariants. This module phrases each as a pure
//! function over observable protocol state (lock sets, sent acks,
//! identifier sets), so that tests can assert them on *every round of
//! every adversarial execution*, not just on final outcomes:
//!
//! * **Lemma 7** — identifier quorums of size `ℓ − t` pairwise intersect
//!   in an identifier held by exactly one process, which is correct
//!   (needs `2ℓ > n + 3t`): [`sole_correct_witness`].
//! * **Lemma 8 / Lemma 32** — all `⟨ack v, ph⟩` messages sent by correct
//!   processes in one phase carry the same value:
//!   [`ack_values_by_phase`] + [`phase_acks_unique`].
//! * **Lemma 11 / Lemma 36** — after stabilization, the lock sets of all
//!   correct processes agree on a single value: [`distinct_locked_values`].
//! * **Lemma 34** — a correct Figure 7 process holds at most one lock
//!   pair at any phase end: checked directly on
//!   [`RestrictedAgreement::locks`](crate::RestrictedAgreement::locks).
//!
//! None of these functions is used by the protocols themselves — they are
//! *observers*. Their value is in the test harnesses: a protocol bug that
//! still happens to produce agreeing decisions (e.g. by luck of the
//! schedule) will usually break one of these invariants long before it
//! breaks an outcome.

use std::collections::{BTreeMap, BTreeSet};

use homonym_core::{Id, IdAssignment, Pid, Value};

/// The identifiers in `a ∩ b` that are held by exactly one process and no
/// Byzantine process, ascending — Lemma 7's witnesses.
///
/// Lemma 7 asserts this is non-empty whenever `|a| ≥ ℓ − t`,
/// `|b| ≥ ℓ − t` and `2ℓ > n + 3t`; [`sole_correct_witness`] returns the
/// first witness, and the property tests sweep random assignments
/// asserting existence.
pub fn sole_correct_witnesses(
    assignment: &IdAssignment,
    byz: &BTreeSet<Pid>,
    a: &BTreeSet<Id>,
    b: &BTreeSet<Id>,
) -> Vec<Id> {
    a.intersection(b)
        .copied()
        .filter(|&id| {
            let holders = assignment.group(id);
            holders.len() == 1 && holders.iter().all(|p| !byz.contains(p))
        })
        .collect()
}

/// The first Lemma 7 witness in `a ∩ b`, if any.
pub fn sole_correct_witness(
    assignment: &IdAssignment,
    byz: &BTreeSet<Pid>,
    a: &BTreeSet<Id>,
    b: &BTreeSet<Id>,
) -> Option<Id> {
    sole_correct_witnesses(assignment, byz, a, b)
        .into_iter()
        .next()
}

/// Whether Lemma 7's *premise* holds for these parameters: quorums of
/// size `ℓ − t` are meaningful and `2ℓ > n + 3t`.
pub fn lemma7_applies(n: usize, ell: usize, t: usize) -> bool {
    ell > t && 2 * ell > n + 3 * t
}

/// Groups observed `(value, phase)` ack pairs by phase.
///
/// Feed it the acks extracted from correct processes' outgoing bundles
/// (via [`Bundle::acks`](crate::Bundle::acks) or
/// [`RestrictedBundle::acks`](crate::RestrictedBundle::acks)).
pub fn ack_values_by_phase<V: Value>(
    acks: impl IntoIterator<Item = (V, u64)>,
) -> BTreeMap<u64, BTreeSet<V>> {
    let mut by_phase: BTreeMap<u64, BTreeSet<V>> = BTreeMap::new();
    for (v, ph) in acks {
        by_phase.entry(ph).or_default().insert(v);
    }
    by_phase
}

/// Lemma 8 / Lemma 32: every phase's correct acks carry one value.
/// Returns the offending phases (empty = invariant holds).
pub fn phase_acks_unique<V: Value>(by_phase: &BTreeMap<u64, BTreeSet<V>>) -> Vec<u64> {
    by_phase
        .iter()
        .filter(|(_, values)| values.len() > 1)
        .map(|(&ph, _)| ph)
        .collect()
}

/// The distinct values appearing in any of the given lock sets.
///
/// Lemma 11 / Lemma 36: at the end of any phase after stabilization, this
/// must have at most one element across all correct processes.
pub fn distinct_locked_values<'a, V: Value>(
    lock_sets: impl IntoIterator<Item = &'a BTreeSet<(V, u64)>>,
) -> BTreeSet<&'a V> {
    lock_sets
        .into_iter()
        .flat_map(|locks| locks.iter().map(|(v, _)| v))
        .collect()
}

/// For Lemma 10 / Lemma 35: given that a quorum of distinct identifiers
/// acked `(v, ph)`, a correct process that sent one of those acks must
/// hold a lock `(v, ph')` with `ph' ≥ ph`. Returns whether `locks`
/// satisfies that obligation.
pub fn retains_acked_lock<V: Value>(locks: &BTreeSet<(V, u64)>, v: &V, ph: u64) -> bool {
    locks.iter().any(|(w, ph2)| w == v && *ph2 >= ph)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids(raws: impl IntoIterator<Item = u16>) -> BTreeSet<Id> {
        raws.into_iter().map(Id::new).collect()
    }

    #[test]
    fn lemma7_witness_on_unique_assignment() {
        // n = ℓ = 7, t = 2: quorums of 5 among 7 identifiers always
        // intersect in ≥ 3 identifiers; with ≤ 2 Byzantine, one is a
        // sole-correct witness.
        let assignment = IdAssignment::unique(7);
        let byz: BTreeSet<Pid> = [Pid::new(0), Pid::new(1)].into();
        let a = ids(1..=5);
        let b = ids(3..=7);
        let witness =
            sole_correct_witness(&assignment, &byz, &a, &b).expect("lemma 7 guarantees one");
        assert!(a.contains(&witness) && b.contains(&witness));
        // Identifiers 1 and 2 belong to Byzantine processes 0 and 1.
        assert!(witness.get() > 2);
    }

    #[test]
    fn lemma7_witness_excludes_homonym_groups() {
        // n = 6, ℓ = 5 (stacked: identifier 1 held by two processes),
        // t = 1: 2ℓ = 10 > 9 = n + 3t. A witness must avoid identifier 1
        // whatever the quorums, because it is not sole.
        let assignment = IdAssignment::stacked(5, 6).unwrap();
        let byz: BTreeSet<Pid> = BTreeSet::new();
        let a = ids(1..=4);
        let b = ids(1..=4);
        let witnesses = sole_correct_witnesses(&assignment, &byz, &a, &b);
        assert!(!witnesses.is_empty());
        assert!(witnesses.iter().all(|id| assignment.group(*id).len() == 1));
    }

    #[test]
    fn no_witness_when_bound_violated() {
        // n = 5, ℓ = 4, t = 1: 2ℓ = 8 ≤ 8 = n + 3t — Lemma 7's conclusion
        // can fail. Construct quorums intersecting only in the homonym
        // identifier.
        assert!(!lemma7_applies(5, 4, 1));
        let assignment = IdAssignment::stacked(4, 5).unwrap(); // id 1 twice
        let a = ids([1, 2, 3]); // ℓ − t = 3
        let b = ids([1, 2, 4]);
        // Intersection {1, 2}: 1 is the homonym group; make 2
        // Byzantine-held to kill the last candidate.
        let byz: BTreeSet<Pid> = assignment.group(Id::new(2)).into_iter().collect();
        assert_eq!(
            sole_correct_witness(&assignment, &byz, &a, &b),
            None,
            "{{homonym, byzantine}} intersection has no sole-correct witness"
        );
    }

    #[test]
    fn lemma7_exhaustive_at_small_scale() {
        // n = 6, ℓ = 5, t = 1 (2ℓ = 10 > 9 = n + 3t): check the witness
        // exists for EVERY surjective assignment × every pair of
        // (ℓ − t)-sized identifier quorums × every Byzantine placement.
        let (n, ell, t) = (6usize, 5usize, 1usize);
        assert!(lemma7_applies(n, ell, t));
        let quorums: Vec<BTreeSet<Id>> = (1..=ell as u16)
            .map(|out| {
                (1..=ell as u16)
                    .filter(|&i| i != out)
                    .map(Id::new)
                    .collect()
            })
            .collect();
        let mut checked = 0u64;
        for assignment in IdAssignment::enumerate_all(ell, n) {
            for byz_idx in 0..n {
                let byz: BTreeSet<Pid> = [Pid::new(byz_idx)].into();
                for a in &quorums {
                    for b in &quorums {
                        checked += 1;
                        assert!(
                            sole_correct_witness(&assignment, &byz, a, b).is_some(),
                            "no witness: assignment {:?}, byz {byz_idx}, a {a:?}, b {b:?}",
                            assignment.as_slice()
                        );
                    }
                }
            }
        }
        assert_eq!(checked, 1800 * 6 * 25, "the sweep must be exhaustive");
    }

    #[test]
    fn ack_grouping_and_uniqueness() {
        let by_phase =
            ack_values_by_phase([(true, 0), (true, 0), (false, 1), (false, 1), (true, 2)]);
        assert!(phase_acks_unique(&by_phase).is_empty());

        let bad = ack_values_by_phase([(true, 3), (false, 3)]);
        assert_eq!(phase_acks_unique(&bad), vec![3]);
    }

    #[test]
    fn locked_values_collects_across_processes() {
        let p1: BTreeSet<(bool, u64)> = [(true, 4)].into();
        let p2: BTreeSet<(bool, u64)> = [(true, 6)].into();
        let p3: BTreeSet<(bool, u64)> = BTreeSet::new();
        let distinct = distinct_locked_values([&p1, &p2, &p3]);
        assert_eq!(distinct.len(), 1);

        let p4: BTreeSet<(bool, u64)> = [(false, 5)].into();
        let distinct = distinct_locked_values([&p1, &p4]);
        assert_eq!(distinct.len(), 2, "coherence violation must be visible");
    }

    #[test]
    fn lock_retention_obligation() {
        let locks: BTreeSet<(bool, u64)> = [(true, 5)].into();
        assert!(retains_acked_lock(&locks, &true, 5));
        assert!(
            retains_acked_lock(&locks, &true, 3),
            "later re-lock satisfies"
        );
        assert!(!retains_acked_lock(&locks, &true, 6), "stale lock does not");
        assert!(
            !retains_acked_lock(&locks, &false, 5),
            "wrong value does not"
        );
    }
}
