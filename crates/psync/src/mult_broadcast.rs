//! The authenticated broadcast **with multiplicities** of Figure 6
//! (Appendix A.3.1), for numerate processes facing restricted Byzantine
//! senders.
//!
//! `Broadcast(i, m, r)` is performed by a process with identifier `i` in
//! superround `r`; `Accept(i, α, m, r)` carries an estimate `α` of how
//! many holders of `i` broadcast `m`. Every process sends one combined
//! message per round containing its `⟨init⟩` tuples and an
//! `⟨echo, h, a[h,m,k], m, k⟩` tuple for every non-zero counter. Per round
//! `R` a receiver, counting *valid* messages with multiplicity:
//!
//! * `R = 2r`: sets `a[h,m,r]` to the number of valid messages from `h`
//!   containing `(init, h, m, r)`;
//! * any `R`: if at least `n − 2t` valid messages contain
//!   `(echo, h, ⋆, m, k)`, raises `a[h,m,k]` to the largest `α` such that
//!   `n − 2t` of them carry `α' ≥ α`;
//! * odd `R`: if at least `n − t` valid messages contain the tuple,
//!   performs `Accept(h, α₂, m, k)` with `α₂` the largest `α` such that
//!   `n − t` carry `α' ≥ α`.
//!
//! Theorem 29: unicity, correctness, relay, and unforgeability
//! (`0 ≤ α' ≤ α + fᵢ`) hold whenever `n > 3t` and each Byzantine process
//! sends at most one message per recipient per round.

use std::collections::BTreeMap;

use homonym_core::codec::{DecodeError, Reader, WireDecode, WireEncode, Writer};
use homonym_core::intern::Tok;
use homonym_core::{Id, Interner, Message, Round, WireSize};

/// The per-round wire part of the multiplicity broadcast: the sender's
/// `⟨init⟩` tuples (its own identifier is implicit — identifiers cannot be
/// forged) and its echo table.
#[derive(Clone, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct MultPart<M> {
    /// `(m, r)` tuples: this sender performs `Broadcast(i, m, r)`.
    pub inits: BTreeMap<M, u64>,
    /// `(echo, h, α, m, k)` tuples, keyed by `(h, m, k)`.
    pub echoes: BTreeMap<(Id, M, u64), u64>,
}

impl<M: WireSize> WireSize for MultPart<M> {
    fn wire_bits(&self) -> u64 {
        self.inits.wire_bits() + self.echoes.wire_bits()
    }
}

impl<M: WireEncode> WireEncode for MultPart<M> {
    fn encode(&self, w: &mut Writer) {
        self.inits.encode(w);
        self.echoes.encode(w);
    }
}

impl<M: WireDecode + Ord> WireDecode for MultPart<M> {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(MultPart {
            inits: BTreeMap::decode(r)?,
            echoes: BTreeMap::decode(r)?,
        })
    }
}

/// An `Accept(i, α, m, r)` event.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct MultAccept<M> {
    /// The identifier the broadcast is attributed to.
    pub src: Id,
    /// The multiplicity estimate.
    pub alpha: u64,
    /// The payload.
    pub payload: M,
    /// The superround of the original broadcast.
    pub sr: u64,
}

/// One process's view of the Figure 6 broadcast layer.
///
/// Transport-agnostic like
/// [`EchoBroadcast`](crate::EchoBroadcast): the owning protocol embeds
/// [`MultBroadcast::part_to_send`] in its bundle and feeds received parts
/// (with their *message multiplicities* — this layer is for numerate
/// systems) back through [`MultBroadcast::observe`].
///
/// # Example
///
/// ```
/// use homonym_core::{Id, Round};
/// use homonym_psync::MultBroadcast;
///
/// let mut bc: MultBroadcast<&str> = MultBroadcast::new(4, 1, Id::new(2));
/// bc.broadcast("m", 0);
/// let part = bc.part_to_send(Round::new(0));
/// assert!(part.inits.contains_key("m"));
/// ```
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct MultBroadcast<M> {
    n: usize,
    t: usize,
    id: Id,
    /// Every distinct payload seen, interned once; the counter table keys
    /// on tokens so probes and raises never deep-compare payloads.
    intern: Interner<M>,
    /// `a[h, m, k]`, keyed `(h, token of m, k)`.
    a: BTreeMap<(Id, Tok, u64), u64>,
    /// Broadcasts queued: payload → superround requested.
    pending: Vec<(M, u64)>,
    /// Bumped whenever a counter's *emitted* value changes — equal
    /// generations ⇒ [`part_to_send`](MultBroadcast::part_to_send) emits
    /// the same echo table, which lets the owning protocol reuse a cached
    /// wire part.
    generation: u64,
}

impl<M: Message> MultBroadcast<M> {
    /// Creates the layer for a process with identifier `id` in a system of
    /// `n` processes tolerating `t` faults.
    pub fn new(n: usize, t: usize, id: Id) -> Self {
        MultBroadcast {
            n,
            t,
            id,
            intern: Interner::new(),
            a: BTreeMap::new(),
            pending: Vec::new(),
            generation: 0,
        }
    }

    /// The echo-raise threshold `n − 2t` (saturating, at least 1).
    pub fn raise_threshold(&self) -> u64 {
        (self.n.saturating_sub(2 * self.t) as u64).max(1)
    }

    /// The accept threshold `n − t`.
    pub fn accept_threshold(&self) -> u64 {
        self.n.saturating_sub(self.t) as u64
    }

    /// Queues `Broadcast(id, payload, sr)`; the `⟨init⟩` goes out in the
    /// first round of superround `sr` (line 9 of Figure 6).
    pub fn broadcast(&mut self, payload: M, sr: u64) {
        self.pending.push((payload, sr));
    }

    /// The wire part for this round: `⟨init⟩` tuples whose superround is
    /// now, plus an echo tuple for every non-zero counter (lines 3–10).
    pub fn part_to_send(&mut self, round: Round) -> MultPart<M> {
        let mut part = MultPart {
            inits: BTreeMap::new(),
            echoes: self
                .a
                .iter()
                .filter(|(_, &alpha)| alpha > 0)
                .map(|(&(h, tok, k), &alpha)| ((h, self.intern.resolve(tok).clone(), k), alpha))
                .collect(),
        };
        if round.is_first_of_superround() {
            let sr = round.superround().index();
            let mut rest = Vec::new();
            for (m, want) in self.pending.drain(..) {
                if want <= sr {
                    part.inits.insert(m, sr);
                } else {
                    rest.push((m, want));
                }
            }
            self.pending = rest;
        }
        part
    }

    /// Whether a queued `Broadcast` would emit an `⟨init⟩` if
    /// [`part_to_send`](MultBroadcast::part_to_send) ran at `round`.
    pub(crate) fn init_due(&self, round: Round) -> bool {
        round.is_first_of_superround() && {
            let sr = round.superround().index();
            self.pending.iter().any(|&(_, want)| want <= sr)
        }
    }

    /// A counter that advances whenever the emitted echo table changes.
    pub(crate) fn generation(&self) -> u64 {
        self.generation
    }

    /// Figure 6's validity filter for one received message: the init
    /// tuples must carry the sender's identifier (enforced structurally —
    /// `inits` are attributed to the envelope identifier) and superround
    /// `2r = R`; echo tuples must satisfy `R ≥ 2k`.
    fn is_valid(part: &MultPart<M>, round: Round) -> bool {
        let r = round.index();
        part.inits.values().all(|&sr| 2 * sr == r)
            && part.echoes.keys().all(|&(_, _, k)| r >= 2 * k)
    }

    /// Processes one round's received messages — `(sender identifier,
    /// part, multiplicity)` triples — and returns the accepts performed
    /// (odd rounds only, per line 19).
    pub fn observe(
        &mut self,
        round: Round,
        received: &[(Id, &MultPart<M>, u64)],
    ) -> Vec<MultAccept<M>> {
        let r = round.index();
        let valid: Vec<(Id, &MultPart<M>, u64)> = received
            .iter()
            .filter(|(_, part, _)| Self::is_valid(part, round))
            .copied()
            .collect();

        // Line 13–14: initial counts from ⟨init⟩ tuples (even rounds).
        if r % 2 == 0 {
            let sr = r / 2;
            let mut init_counts: BTreeMap<(Id, Tok), u64> = BTreeMap::new();
            for (src, part, mult) in &valid {
                for (m, &want) in &part.inits {
                    debug_assert_eq!(want, sr);
                    *init_counts
                        .entry((*src, self.intern.intern(m)))
                        .or_insert(0) += mult;
                }
            }
            for ((h, tok), alpha) in init_counts {
                if self.a.insert((h, tok, sr), alpha) != Some(alpha) {
                    self.generation += 1;
                }
            }
        }

        // Lines 15–18: raise counters to the (n − 2t)-strongest echo value.
        let mut echo_support: BTreeMap<(Id, Tok, u64), Vec<(u64, u64)>> = BTreeMap::new();
        for (_, part, mult) in &valid {
            for ((h, m, k), &alpha) in &part.echoes {
                echo_support
                    .entry((*h, self.intern.intern(m), *k))
                    .or_default()
                    .push((alpha, *mult));
            }
        }
        let mut accepts = Vec::new();
        for (key, mut support) in echo_support {
            // Sort by α descending; cumulative multiplicity.
            support.sort_by_key(|&(alpha, _)| std::cmp::Reverse(alpha));
            let kth_largest = |threshold: u64| -> Option<u64> {
                let mut cum = 0u64;
                for &(alpha, mult) in &support {
                    cum += mult;
                    if cum >= threshold {
                        return Some(alpha);
                    }
                }
                None
            };
            if let Some(alpha1) = kth_largest(self.raise_threshold()) {
                let entry = self.a.entry(key).or_insert(0);
                if alpha1 > *entry {
                    *entry = alpha1;
                    self.generation += 1;
                }
            }
            if r % 2 == 1 {
                if let Some(alpha2) = kth_largest(self.accept_threshold()) {
                    accepts.push(MultAccept {
                        src: key.0,
                        alpha: alpha2,
                        payload: self.intern.resolve(key.1).clone(),
                        sr: key.2,
                    });
                }
            }
        }
        // The deep-keyed implementation iterated its support map in
        // ascending (identifier, payload, superround) order; tokens sort
        // in first-seen order, so restore the original report order.
        accepts.sort_by(|a, b| (a.src, &a.payload, a.sr).cmp(&(b.src, &b.payload, b.sr)));
        accepts
    }

    /// The current counter `a[h, m, k]` (diagnostic).
    pub fn counter(&self, h: Id, m: &M, k: u64) -> u64 {
        self.intern
            .get(m)
            .and_then(|tok| self.a.get(&(h, tok, k)).copied())
            .unwrap_or(0)
    }

    /// The identifier this layer authenticates as.
    pub fn id(&self) -> Id {
        self.id
    }

    /// Structural state-size estimate in bits, on the same per-entry
    /// scale as the bounded analogue — grows O(history) here, because
    /// counters are never discarded.
    pub fn state_bits(&self) -> u64 {
        (self.a.len() as u64) * 256
            + (self.intern.len() as u64) * 128
            + (self.pending.len() as u64) * 128
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A synchronous network of correct processes over the layer alone.
    /// `assignment[k]` is the identifier of process `k`.
    struct Net {
        procs: Vec<MultBroadcast<&'static str>>,
        assignment: Vec<Id>,
        round: Round,
    }

    impl Net {
        fn new(n: usize, t: usize, assignment: &[u16]) -> Self {
            let assignment: Vec<Id> = assignment.iter().map(|&i| Id::new(i)).collect();
            Net {
                procs: (0..n)
                    .map(|k| MultBroadcast::new(n, t, assignment[k]))
                    .collect(),
                assignment,
                round: Round::ZERO,
            }
        }

        /// One round with full delivery; `forged` are extra (id, part)
        /// pairs injected by the adversary, each of multiplicity 1.
        fn step(
            &mut self,
            forged: &[(Id, MultPart<&'static str>)],
        ) -> Vec<Vec<MultAccept<&'static str>>> {
            let r = self.round;
            let parts: Vec<MultPart<&'static str>> =
                self.procs.iter_mut().map(|p| p.part_to_send(r)).collect();
            // Aggregate identical (id, part) pairs into multiplicities —
            // exactly what a numerate inbox does.
            let mut multiset: BTreeMap<(Id, MultPart<&'static str>), u64> = BTreeMap::new();
            for (k, part) in parts.iter().enumerate() {
                *multiset
                    .entry((self.assignment[k], part.clone()))
                    .or_insert(0) += 1;
            }
            for (id, part) in forged {
                *multiset.entry((*id, part.clone())).or_insert(0) += 1;
            }
            let received: Vec<(Id, &MultPart<&'static str>, u64)> = multiset
                .iter()
                .map(|((id, part), &mult)| (*id, part, mult))
                .collect();
            let out = self
                .procs
                .iter_mut()
                .map(|p| p.observe(r, &received))
                .collect();
            self.round = r.next();
            out
        }
    }

    #[test]
    fn correctness_counts_homonym_broadcasters() {
        // Four processes; identifier 1 held by two of them; both broadcast
        // "m" in superround 0. Everyone must accept with α ≥ 2.
        let mut net = Net::new(4, 1, &[1, 1, 2, 3]);
        net.procs[0].broadcast("m", 0);
        net.procs[1].broadcast("m", 0);
        let accepts = net.step(&[]); // round 0 (even): inits counted
        assert!(accepts.iter().all(|a| a.is_empty()));
        let accepts = net.step(&[]); // round 1 (odd): accepts fire
        for per_proc in &accepts {
            assert_eq!(per_proc.len(), 1);
            let a = &per_proc[0];
            assert_eq!(a.src, Id::new(1));
            assert_eq!(a.payload, "m");
            assert_eq!(a.sr, 0);
            assert!(a.alpha >= 2, "both homonym broadcasters must be counted");
        }
    }

    #[test]
    fn single_broadcaster_alpha_is_one() {
        let mut net = Net::new(4, 1, &[1, 2, 3, 4]);
        net.procs[2].broadcast("m", 0);
        net.step(&[]);
        let accepts = net.step(&[]);
        for per_proc in &accepts {
            assert_eq!(per_proc[0].alpha, 1);
            assert_eq!(per_proc[0].src, Id::new(3));
        }
    }

    #[test]
    fn unforgeability_alpha_bounded_by_fi() {
        // Identifier 1 is held by one correct process (who does NOT
        // broadcast) and one Byzantine process (f₁ = 1). The Byzantine
        // process claims an init; the accepted α must be ≤ 0 + f₁ = 1.
        let mut net = Net::new(4, 1, &[1, 2, 3, 4]);
        let forged_init = MultPart {
            inits: BTreeMap::from([("lie", 0)]),
            echoes: BTreeMap::new(),
        };
        // The adversary is restricted: one message per recipient — in this
        // test harness all processes see the same single forged copy.
        let accepts_r0 = net.step(&[(Id::new(1), forged_init)]);
        assert!(accepts_r0.iter().all(|a| a.is_empty()));
        let accepts = net.step(&[]);
        for per_proc in &accepts {
            for a in per_proc {
                assert!(a.alpha <= 1, "unforgeability bound violated: {a:?}");
            }
        }
    }

    #[test]
    fn echo_injection_below_n_minus_2t_is_ignored() {
        // A single Byzantine message carrying a huge echo value cannot move
        // counters: n − 2t = 2 > 1 message.
        let mut net = Net::new(4, 1, &[1, 2, 3, 4]);
        let forged = MultPart {
            inits: BTreeMap::new(),
            echoes: BTreeMap::from([((Id::new(2), "junk", 0), 99u64)]),
        };
        for _ in 0..4 {
            let accepts = net.step(&[(Id::new(1), forged.clone())]);
            assert!(accepts.iter().all(|a| a.is_empty()));
        }
        assert_eq!(net.procs[2].counter(Id::new(2), &"junk", 0), 0);
    }

    #[test]
    fn invalid_messages_discarded_entirely() {
        let mut p: MultBroadcast<&'static str> = MultBroadcast::new(4, 1, Id::new(1));
        // Init claiming superround 3 inside round 0 (2r ≠ R): invalid.
        let bad = MultPart {
            inits: BTreeMap::from([("m", 3u64)]),
            echoes: BTreeMap::new(),
        };
        let accepts = p.observe(Round::new(0), &[(Id::new(2), &bad, 4)]);
        assert!(accepts.is_empty());
        assert_eq!(p.counter(Id::new(2), &"m", 3), 0);

        // Echo from the future (R < 2k): invalid.
        let bad = MultPart {
            inits: BTreeMap::new(),
            echoes: BTreeMap::from([((Id::new(2), "m", 5u64), 1u64)]),
        };
        let accepts = p.observe(Round::new(1), &[(Id::new(2), &bad, 4)]);
        assert!(accepts.is_empty());
    }

    #[test]
    fn relay_counters_never_decrease() {
        let mut net = Net::new(4, 1, &[1, 1, 2, 3]);
        net.procs[0].broadcast("m", 0);
        net.procs[1].broadcast("m", 0);
        net.step(&[]);
        net.step(&[]);
        let before = net.procs[3].counter(Id::new(1), &"m", 0);
        assert!(before >= 2);
        // Several more rounds: counters persist and re-accepts carry the
        // same (or larger) α each superround.
        for _ in 0..4 {
            let accepts = net.step(&[]);
            for per in &accepts {
                for a in per {
                    assert!(a.alpha >= before);
                }
            }
        }
        assert!(net.procs[3].counter(Id::new(1), &"m", 0) >= before);
    }

    #[test]
    fn unicity_one_accept_per_superround() {
        let mut net = Net::new(4, 1, &[1, 2, 3, 4]);
        net.procs[0].broadcast("m", 0);
        let mut accept_rounds = Vec::new();
        for r in 0..8u64 {
            let accepts = net.step(&[]);
            if !accepts[1].is_empty() {
                accept_rounds.push(r);
                assert_eq!(accepts[1].len(), 1);
            }
        }
        // Accepts happen only in odd rounds: at most one per superround.
        assert!(accept_rounds.iter().all(|r| r % 2 == 1));
    }

    #[test]
    fn queued_broadcast_waits_for_requested_superround() {
        let mut p: MultBroadcast<&'static str> = MultBroadcast::new(4, 1, Id::new(1));
        p.broadcast("m", 2);
        assert!(p.part_to_send(Round::new(0)).inits.is_empty());
        assert!(p.part_to_send(Round::new(2)).inits.is_empty());
        let part = p.part_to_send(Round::new(4)); // superround 2
        assert_eq!(part.inits.get("m"), Some(&2));
    }
}
