//! Golden byte-vector tests pinning the wire format of the classic
//! synchronous message types (format version 1, the single leading byte
//! of each frame). Breaking any of these vectors is a wire-format break:
//! bump `FORMAT_VERSION` in `homonym_core::codec` and regenerate.

use std::collections::BTreeMap;

use homonym_core::codec::encode_frame;
use homonym_core::{Domain, Id};

use crate::eig::{Eig, EigMsg};
use crate::interface::SyncBa;
use crate::phase_king::{PhaseKing, PhaseKingMsg};

#[test]
fn golden_eig_vectors() {
    let msg: EigMsg<bool> = BTreeMap::from([(vec![], true), (vec![Id::new(2)], false)]);
    assert_eq!(encode_frame(&msg), vec![1, 2, 0, 1, 1, 2, 0]);

    // The deterministic initial state of identifier 1 proposing `true`:
    // a one-node tree (root) and no decision.
    let eig = Eig::new(4, 1, Domain::binary());
    let state = eig.init(Id::new(1), true);
    assert_eq!(encode_frame(&state), vec![1, 1, 1, 0, 1, 0]);
}

#[test]
fn golden_phase_king_vectors() {
    assert_eq!(encode_frame(&PhaseKingMsg::King(true)), vec![1, 1, 1]);

    // The deterministic initial state of identifier 2 proposing `false`.
    let pk = PhaseKing::new(5, 1, Domain::binary());
    let state = pk.init(Id::new(2), false);
    assert_eq!(encode_frame(&state), vec![1, 2, 0, 0, 0]);
}
