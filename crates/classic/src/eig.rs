//! Exponential information gathering (EIG) Byzantine agreement.
//!
//! The classical unauthenticated algorithm of Lamport–Shostak–Pease in its
//! information-gathering formulation (as in Bar-Noy–Dolev–Dwork–Strong and
//! Lynch's *Distributed Algorithms*): correct for `n > 3t`, decides after
//! exactly `t + 1` rounds. Message sizes are exponential in `t`, which is
//! irrelevant here — the transformer instantiates it with `n = ℓ`, and the
//! interesting homonym systems have small `ℓ`.

use std::collections::BTreeMap;

use homonym_core::codec::{DecodeError, Reader, WireDecode, WireEncode, Writer};
use homonym_core::{Domain, Id, Value, WireSize};

use crate::interface::SyncBa;

/// A node label in the EIG tree: a path of distinct identifiers, root `ε`
/// is the empty path.
type Path = Vec<Id>;

/// The EIG algorithm description: `ℓ` processes with unique identifiers,
/// tolerating `t < ℓ/3` Byzantine faults over the given value domain.
///
/// # Example
///
/// ```
/// use homonym_classic::{Eig, SyncBa};
/// use homonym_core::{Domain, Id};
///
/// let algo = Eig::new(4, 1, Domain::binary());
/// let s = algo.init(Id::new(1), true);
/// assert_eq!(algo.decide(&s), None); // no decision before round t + 1
/// assert_eq!(algo.round_bound(), 2);
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Eig<V> {
    ell: usize,
    t: usize,
    domain: Domain<V>,
}

/// The EIG tree: values recorded for each path, plus the decision once the
/// final round has been processed.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct EigState<V> {
    id: Id,
    /// `val(σ)` for every path recorded so far; the root holds the input.
    tree: BTreeMap<Path, V>,
    decided: Option<V>,
}

impl<V: Value> EigState<V> {
    /// The process's own input (the root of the tree).
    pub fn input(&self) -> &V {
        &self.tree[&Vec::new()]
    }

    /// Number of recorded tree nodes (diagnostic).
    pub fn tree_size(&self) -> usize {
        self.tree.len()
    }
}

/// One round's broadcast: `val(σ)` for every level-`r−1` path `σ` the
/// sender may relay (its own identifier not in `σ`).
pub type EigMsg<V> = BTreeMap<Path, V>;

impl<V: Value + WireSize> WireSize for EigState<V> {
    fn wire_bits(&self) -> u64 {
        self.id.wire_bits() + self.tree.wire_bits() + self.decided.wire_bits()
    }
}

impl<V: Value + WireEncode> WireEncode for EigState<V> {
    fn encode(&self, w: &mut Writer) {
        self.id.encode(w);
        self.tree.encode(w);
        self.decided.encode(w);
    }
}

impl<V: Value + WireDecode> WireDecode for EigState<V> {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(EigState {
            id: Id::decode(r)?,
            tree: BTreeMap::decode(r)?,
            decided: Option::decode(r)?,
        })
    }
}

impl<V: Value> Eig<V> {
    /// Creates the algorithm description.
    ///
    /// # Panics
    ///
    /// Panics if `ell ≤ 3t` — EIG is incorrect there, and the transformer
    /// must not silently accept an unsound substrate. (Lower-bound
    /// experiments that *want* an unsound configuration construct it via
    /// [`Eig::new_unchecked`].)
    pub fn new(ell: usize, t: usize, domain: Domain<V>) -> Self {
        assert!(
            ell > 3 * t,
            "EIG requires ell > 3t (got ell = {ell}, t = {t})"
        );
        Self::new_unchecked(ell, t, domain)
    }

    /// Creates the algorithm description without the `ℓ > 3t` soundness
    /// check. The lower-bound scenarios run algorithms outside their sound
    /// range on purpose — that is the whole point of the Figure 1
    /// experiment.
    pub fn new_unchecked(ell: usize, t: usize, domain: Domain<V>) -> Self {
        Eig { ell, t, domain }
    }

    /// The value domain.
    pub fn domain(&self) -> &Domain<V> {
        &self.domain
    }

    fn default_value(&self) -> V {
        self.domain.default_value().clone()
    }

    /// Whether `path` is a structurally valid level-`level` tree label:
    /// correct length, distinct in-range identifiers.
    fn valid_path(&self, path: &Path, level: usize) -> bool {
        path.len() == level
            && path.iter().all(|id| id.index() < self.ell)
            && (1..path.len()).all(|k| !path[..k].contains(&path[k]))
    }

    /// `val(σ)`, defaulting for unrecorded paths.
    fn val(&self, s: &EigState<V>, path: &Path) -> V {
        s.tree
            .get(path)
            .cloned()
            .unwrap_or_else(|| self.default_value())
    }

    /// Recursive resolve: leaf value at level `t + 1`, strict majority of
    /// children elsewhere (default on tie or no majority).
    fn resolve(&self, s: &EigState<V>, path: &Path) -> V {
        if path.len() == self.t + 1 {
            return self.val(s, path);
        }
        let mut counts: BTreeMap<V, usize> = BTreeMap::new();
        let mut children = 0usize;
        for id in Id::all(self.ell) {
            if path.contains(&id) {
                continue;
            }
            children += 1;
            let mut child = path.clone();
            child.push(id);
            *counts.entry(self.resolve(s, &child)).or_insert(0) += 1;
        }
        counts
            .into_iter()
            .find(|&(_, c)| 2 * c > children)
            .map(|(v, _)| v)
            .unwrap_or_else(|| self.default_value())
    }
}

impl<V: Value> SyncBa for Eig<V> {
    type State = EigState<V>;
    type Msg = EigMsg<V>;
    type Value = V;

    fn ell(&self) -> usize {
        self.ell
    }

    fn t(&self) -> usize {
        self.t
    }

    fn init(&self, id: Id, input: V) -> EigState<V> {
        EigState {
            id,
            tree: BTreeMap::from([(Vec::new(), input)]),
            decided: None,
        }
    }

    fn message(&self, s: &EigState<V>, ba_round: u64) -> EigMsg<V> {
        if ba_round > self.t as u64 + 1 {
            return EigMsg::new(); // the protocol proper is over
        }
        let level = (ba_round - 1) as usize;
        s.tree
            .iter()
            .filter(|(path, _)| path.len() == level && !path.contains(&s.id))
            .map(|(path, v)| (path.clone(), v.clone()))
            .collect()
    }

    fn transition(
        &self,
        s: &EigState<V>,
        ba_round: u64,
        received: &BTreeMap<Id, EigMsg<V>>,
    ) -> EigState<V> {
        let mut next = s.clone();
        if ba_round > self.t as u64 + 1 {
            return next;
        }
        let level = (ba_round - 1) as usize;
        for (&sender, msg) in received {
            if sender.index() >= self.ell {
                continue;
            }
            for (path, v) in msg {
                // Record val(σ · sender) from the sender's report of val(σ);
                // reject malformed or self-referential labels.
                if !self.valid_path(path, level) || path.contains(&sender) {
                    continue;
                }
                if !self.domain.contains(v) {
                    continue; // out-of-domain junk from a Byzantine sender
                }
                let mut extended = path.clone();
                extended.push(sender);
                next.tree.entry(extended).or_insert_with(|| v.clone());
            }
        }
        if ba_round == self.t as u64 + 1 && next.decided.is_none() {
            next.decided = Some(self.resolve(&next, &Vec::new()));
        }
        next
    }

    fn decide(&self, s: &EigState<V>) -> Option<V> {
        s.decided.clone()
    }

    fn round_bound(&self) -> u64 {
        self.t as u64 + 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Drives a full synchronous execution of EIG among `ell` unique-id
    /// processes where `byz` identifiers send adversarial messages produced
    /// by `forge(byz_id, round, honest_msgs)`.
    fn run_eig(
        ell: usize,
        t: usize,
        inputs: &[bool],
        byz: &[Id],
        mut forge: impl FnMut(Id, u64, &BTreeMap<Id, EigMsg<bool>>) -> BTreeMap<Id, EigMsg<bool>>,
    ) -> Vec<Option<bool>> {
        let algo = Eig::new_unchecked(ell, t, Domain::binary());
        let mut states: BTreeMap<Id, EigState<bool>> = Id::all(ell)
            .filter(|id| !byz.contains(id))
            .map(|id| (id, algo.init(id, inputs[id.index()])))
            .collect();
        for r in 1..=(t as u64 + 1) {
            // Honest broadcasts.
            let honest: BTreeMap<Id, EigMsg<bool>> = states
                .iter()
                .map(|(&id, s)| (id, algo.message(s, r)))
                .collect();
            // Per-receiver inbox: honest messages plus per-receiver forgeries.
            let mut next = BTreeMap::new();
            for (&id, s) in &states {
                let mut inbox = honest.clone();
                for b in byz {
                    let forged = forge(*b, r, &honest);
                    if let Some(m) = forged.get(&id) {
                        inbox.insert(*b, m.clone());
                    }
                }
                next.insert(id, algo.transition(s, r, &inbox));
            }
            states = next;
        }
        Id::all(ell)
            .map(|id| states.get(&id).and_then(|s| algo.decide(s)))
            .collect()
    }

    #[test]
    fn all_correct_same_input_decides_that_input() {
        for v in [false, true] {
            let decisions = run_eig(4, 1, &[v; 4], &[], |_, _, _| BTreeMap::new());
            for d in decisions {
                assert_eq!(d, Some(v));
            }
        }
    }

    #[test]
    fn mixed_inputs_still_agree() {
        let decisions = run_eig(4, 1, &[true, false, true, false], &[], |_, _, _| {
            BTreeMap::new()
        });
        let first = decisions[0];
        assert!(first.is_some());
        for d in decisions {
            assert_eq!(d, first);
        }
    }

    #[test]
    fn silent_byzantine_tolerated() {
        let byz = [Id::new(3)];
        let decisions = run_eig(4, 1, &[true, true, true, true], &byz, |_, _, _| {
            BTreeMap::new()
        });
        for id in Id::all(4) {
            if !byz.contains(&id) {
                assert_eq!(decisions[id.index()], Some(true));
            }
        }
    }

    #[test]
    fn equivocating_byzantine_tolerated() {
        // The Byzantine identifier tells each correct process a different
        // story in round 1 and relays garbage in round 2.
        let byz = [Id::new(4)];
        let decisions = run_eig(4, 1, &[true, true, true, false], &byz, |b, r, _| {
            let mut per_recipient = BTreeMap::new();
            for (k, id) in Id::all(4).enumerate() {
                if id == b {
                    continue;
                }
                let mut m = EigMsg::new();
                if r == 1 {
                    m.insert(vec![], k % 2 == 0);
                } else {
                    for other in Id::all(4) {
                        if other != b {
                            m.insert(vec![other], k % 2 == 1);
                        }
                    }
                }
                per_recipient.insert(id, m);
            }
            per_recipient
        });
        let correct: Vec<Option<bool>> = Id::all(4)
            .filter(|id| !byz.contains(id))
            .map(|id| decisions[id.index()])
            .collect();
        assert!(correct[0].is_some());
        assert!(correct.iter().all(|d| *d == correct[0]), "{correct:?}");
        // Validity: the three correct processes all proposed true.
        assert_eq!(correct[0], Some(true));
    }

    #[test]
    fn two_faults_need_seven_processes() {
        let byz = [Id::new(6), Id::new(7)];
        let inputs = [true, false, true, false, true, false, false];
        let decisions = run_eig(7, 2, &inputs, &byz, |b, r, _| {
            // Crude equivocation: claim different root values to everyone.
            let mut per_recipient = BTreeMap::new();
            for (k, id) in Id::all(7).enumerate() {
                if id == b {
                    continue;
                }
                let mut m = EigMsg::new();
                if r == 1 {
                    m.insert(vec![], (k + b.index()) % 2 == 0);
                }
                per_recipient.insert(id, m);
            }
            per_recipient
        });
        let correct: Vec<Option<bool>> = Id::all(7)
            .filter(|id| !byz.contains(id))
            .map(|id| decisions[id.index()])
            .collect();
        assert!(correct[0].is_some());
        assert!(correct.iter().all(|d| *d == correct[0]), "{correct:?}");
    }

    #[test]
    fn malformed_messages_ignored() {
        let algo = Eig::new(4, 1, Domain::binary());
        let s = algo.init(Id::new(1), true);
        let mut bad = EigMsg::new();
        bad.insert(vec![Id::new(2), Id::new(2)], false); // repeated id
        bad.insert(vec![Id::new(9)], false); // out of range
        bad.insert(vec![Id::new(3)], false); // wrong level for round 1
        let received = BTreeMap::from([(Id::new(2), bad)]);
        let next = algo.transition(&s, 1, &received);
        assert_eq!(next.tree_size(), 1, "only the root should be present");
    }

    #[test]
    fn sender_cannot_relay_its_own_path() {
        let algo = Eig::new(4, 1, Domain::binary());
        let s = algo.init(Id::new(1), true);
        // Sender 2 claims a value for path [2] in round 2 — σ contains the
        // sender, which the tree structure forbids.
        let mut m = EigMsg::new();
        m.insert(vec![Id::new(2)], false);
        let next = algo.transition(&s, 2, &BTreeMap::from([(Id::new(2), m)]));
        assert!(!next.tree.contains_key(&vec![Id::new(2), Id::new(2)]));
    }

    #[test]
    fn decision_is_stable_after_round_bound() {
        let algo = Eig::new(4, 1, Domain::binary());
        let mut s = algo.init(Id::new(1), true);
        for r in 1..=5 {
            s = algo.transition(&s, r, &BTreeMap::new());
        }
        let d = algo.decide(&s);
        assert!(d.is_some());
        let s2 = algo.transition(&s, 6, &BTreeMap::new());
        assert_eq!(algo.decide(&s2), d);
    }

    #[test]
    #[should_panic(expected = "ell > 3t")]
    fn unsound_parameters_rejected() {
        let _ = Eig::new(3, 1, Domain::binary());
    }

    #[test]
    fn message_levels_match_rounds() {
        let algo = Eig::new(4, 1, Domain::binary());
        let s = algo.init(Id::new(1), true);
        let m1 = algo.message(&s, 1);
        assert_eq!(m1.len(), 1);
        assert!(m1.contains_key(&Vec::new()));
        // Round 3 is past t + 1 = 2: nothing to send.
        assert!(algo.message(&s, 3).is_empty());
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    /// A structurally arbitrary (possibly malformed) EIG message: random
    /// paths over identifiers 1..=6 with random boolean values.
    fn arb_msg() -> impl Strategy<Value = EigMsg<bool>> {
        proptest::collection::btree_map(
            proptest::collection::vec(1u16..=6, 0..3)
                .prop_map(|raw| raw.into_iter().map(Id::new).collect::<Vec<Id>>()),
            any::<bool>(),
            0..5,
        )
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        /// EIG agreement and validity hold under a fully arbitrary
        /// message-forging Byzantine identifier.
        #[test]
        fn eig_survives_arbitrary_forgery(
            inputs in proptest::collection::vec(any::<bool>(), 4),
            byz_index in 0u16..4,
            forged in proptest::collection::vec(arb_msg(), 8),
        ) {
            let ell = 4;
            let t = 1;
            let byz = Id::new(byz_index + 1);
            let algo = Eig::new(ell, t, Domain::binary());
            let mut states: std::collections::BTreeMap<Id, EigState<bool>> = Id::all(ell)
                .filter(|id| *id != byz)
                .map(|id| (id, algo.init(id, inputs[id.index()])))
                .collect();
            let mut forged_iter = forged.into_iter().cycle();
            for r in 1..=algo.round_bound() {
                let honest: std::collections::BTreeMap<Id, EigMsg<bool>> = states
                    .iter()
                    .map(|(&id, s)| (id, algo.message(s, r)))
                    .collect();
                let mut next = std::collections::BTreeMap::new();
                for (&id, s) in &states {
                    let mut inbox = honest.clone();
                    // A different forged message for every recipient and
                    // round: full per-recipient equivocation.
                    inbox.insert(byz, forged_iter.next().expect("cycled"));
                    next.insert(id, algo.transition(s, r, &inbox));
                }
                states = next;
            }
            let decisions: Vec<Option<bool>> =
                states.values().map(|s| algo.decide(s)).collect();
            // Termination.
            prop_assert!(decisions.iter().all(|d| d.is_some()));
            // Agreement.
            prop_assert!(decisions.iter().all(|d| *d == decisions[0]), "{decisions:?}");
            // Validity.
            let correct_inputs: Vec<bool> = Id::all(ell)
                .filter(|id| *id != byz)
                .map(|id| inputs[id.index()])
                .collect();
            if correct_inputs.iter().all(|&v| v) {
                prop_assert_eq!(decisions[0], Some(true));
            }
            if correct_inputs.iter().all(|&v| !v) {
                prop_assert_eq!(decisions[0], Some(false));
            }
        }

        /// The resolve function is deterministic and in-domain for any
        /// recorded tree.
        #[test]
        fn resolve_is_total_and_in_domain(
            entries in proptest::collection::btree_map(
                proptest::collection::vec(1u16..=4, 0..3).prop_map(|raw| {
                    raw.into_iter().map(Id::new).collect::<Vec<Id>>()
                }),
                any::<bool>(),
                0..10,
            ),
        ) {
            let algo = Eig::new(4, 1, Domain::binary());
            let mut s = algo.init(Id::new(1), true);
            // Splice arbitrary (even malformed) entries straight into the
            // tree; resolve must stay total.
            s.tree.extend(entries);
            let v1 = algo.resolve(&s, &Vec::new());
            let v2 = algo.resolve(&s, &Vec::new());
            prop_assert_eq!(v1, v2);
        }

        /// `decode(encode(m)) == m` for arbitrary (even malformed) EIG
        /// messages.
        #[test]
        fn eig_msg_roundtrips(msg in arb_msg()) {
            let frame = homonym_core::codec::encode_frame(&msg);
            let back: EigMsg<bool> =
                homonym_core::codec::decode_frame(&frame).expect("own frames must decode");
            prop_assert_eq!(back, msg);
        }

        /// `decode(encode(s)) == s` for EIG states with arbitrary trees
        /// and decision status.
        #[test]
        fn eig_state_roundtrips(
            raw_id in 1u16..=6,
            tree in arb_msg(),
            decided in any::<bool>(),
            decision in any::<bool>(),
        ) {
            let state = EigState {
                id: Id::new(raw_id),
                tree,
                decided: decided.then_some(decision),
            };
            let frame = homonym_core::codec::encode_frame(&state);
            let back: EigState<bool> =
                homonym_core::codec::decode_frame(&frame).expect("own frames must decode");
            prop_assert_eq!(back, state);
        }
    }
}
