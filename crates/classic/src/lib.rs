//! Unique-identifier synchronous Byzantine agreement baselines.
//!
//! The paper's synchronous homonym algorithm is a *transformer*: "given any
//! synchronous Byzantine agreement algorithm for ℓ processes with unique
//! identifiers (such algorithms exist when ℓ = n > 3t, e.g., reference 13 of the paper), we
//! transform it into an algorithm for n processes and ℓ identifiers". This
//! crate supplies such algorithms `A`:
//!
//! * [`Eig`] — exponential information gathering (Lamport–Shostak–Pease /
//!   Bar-Noy–Dolev style), correct for `n > 3t`, decides after `t + 1`
//!   rounds; the workhorse plugged into `T(A)`;
//! * [`PhaseKing`] — the Berman–Garay–Perry phase-king protocol, correct
//!   for `n > 4t`, decides after `2(t + 1)` rounds with constant-size
//!   messages; included as an independent second instantiation.
//!
//! Both implement the [`SyncBa`] trait, which mirrors the paper's
//! five-part specification of `A` — `init(i, v)`, `M(s, r)`, `δ(s, r, R)`,
//! `decide(s)` over an explicit state type — because the transformer needs
//! to *ship states over the wire* (Figure 3 line 3 sends the state `s`).
//!
//! [`UniqueRunner`] adapts any [`SyncBa`] into a
//! [`Protocol`](homonym_core::Protocol) so the baselines can run directly
//! in the simulator on classical (`ℓ = n`) systems.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

#[cfg(test)]
mod codec_golden;
mod eig;
mod interface;
mod phase_king;

pub use eig::{Eig, EigMsg, EigState};
pub use interface::{SyncBa, UniqueRunner};
pub use phase_king::{PhaseKing, PhaseKingMsg, PhaseKingState};
