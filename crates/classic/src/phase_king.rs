//! The phase-king Byzantine agreement protocol (Berman–Garay–Perry).
//!
//! A polynomial-message alternative instantiation of `A`: `t + 1` phases of
//! two rounds each, constant-size messages, correct for `n > 4t`. Phase `k`
//! (1-based) first has everyone exchange preferences; then the *king* —
//! the process with identifier `k` — broadcasts its majority value, and
//! every process without an overwhelming majority (`> n/2 + t` copies)
//! adopts the king's value. Some phase has a correct king, which aligns all
//! preferences; overwhelming majorities persist thereafter.

use std::collections::BTreeMap;

use homonym_core::codec::{DecodeError, Reader, WireDecode, WireEncode, Writer};
use homonym_core::{Domain, Id, Value, WireSize};

use crate::interface::SyncBa;

/// The phase-king algorithm description for `ℓ` unique-identifier
/// processes tolerating `t < ℓ/4` faults.
///
/// # Example
///
/// ```
/// use homonym_classic::{PhaseKing, SyncBa};
/// use homonym_core::{Domain, Id};
///
/// let algo = PhaseKing::new(5, 1, Domain::binary());
/// let s = algo.init(Id::new(1), false);
/// assert_eq!(algo.round_bound(), 4); // 2(t + 1) rounds
/// assert_eq!(algo.decide(&s), None);
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PhaseKing<V> {
    ell: usize,
    t: usize,
    domain: Domain<V>,
}

/// Phase-king local state.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PhaseKingState<V> {
    id: Id,
    pref: V,
    /// Majority value and its multiplicity from the exchange round of the
    /// current phase (consumed in the king round).
    maj: Option<(V, usize)>,
    decided: Option<V>,
}

impl<V: Value> PhaseKingState<V> {
    /// The current preference.
    pub fn pref(&self) -> &V {
        &self.pref
    }
}

/// Phase-king wire message.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum PhaseKingMsg<V> {
    /// Preference exchange (first round of a phase).
    Pref(V),
    /// The king's broadcast (second round of a phase).
    King(V),
}

impl<V: Value + WireSize> WireSize for PhaseKingMsg<V> {
    fn wire_bits(&self) -> u64 {
        match self {
            PhaseKingMsg::Pref(v) | PhaseKingMsg::King(v) => v.wire_bits(),
        }
    }
}

impl<V: Value + WireSize> WireSize for PhaseKingState<V> {
    fn wire_bits(&self) -> u64 {
        self.id.wire_bits()
            + self.pref.wire_bits()
            + self.maj.wire_bits()
            + self.decided.wire_bits()
    }
}

impl<V: Value + WireEncode> WireEncode for PhaseKingMsg<V> {
    fn encode(&self, w: &mut Writer) {
        match self {
            PhaseKingMsg::Pref(v) => {
                w.put_u8(0);
                v.encode(w);
            }
            PhaseKingMsg::King(v) => {
                w.put_u8(1);
                v.encode(w);
            }
        }
    }
}

impl<V: Value + WireDecode> WireDecode for PhaseKingMsg<V> {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        match r.take_u8()? {
            0 => Ok(PhaseKingMsg::Pref(V::decode(r)?)),
            1 => Ok(PhaseKingMsg::King(V::decode(r)?)),
            tag => Err(DecodeError::BadTag {
                what: "PhaseKingMsg",
                tag,
            }),
        }
    }
}

impl<V: Value + WireEncode> WireEncode for PhaseKingState<V> {
    fn encode(&self, w: &mut Writer) {
        self.id.encode(w);
        self.pref.encode(w);
        self.maj.encode(w);
        self.decided.encode(w);
    }
}

impl<V: Value + WireDecode> WireDecode for PhaseKingState<V> {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(PhaseKingState {
            id: Id::decode(r)?,
            pref: V::decode(r)?,
            maj: Option::decode(r)?,
            decided: Option::decode(r)?,
        })
    }
}

impl<V: Value> PhaseKing<V> {
    /// Creates the algorithm description.
    ///
    /// # Panics
    ///
    /// Panics if `ell ≤ 4t` (the protocol's soundness range) — use
    /// [`PhaseKing::new_unchecked`] to build deliberately unsound instances
    /// for lower-bound experiments.
    pub fn new(ell: usize, t: usize, domain: Domain<V>) -> Self {
        assert!(
            ell > 4 * t,
            "phase-king requires ell > 4t (got ell = {ell}, t = {t})"
        );
        Self::new_unchecked(ell, t, domain)
    }

    /// Creates the algorithm description without the `ℓ > 4t` check.
    pub fn new_unchecked(ell: usize, t: usize, domain: Domain<V>) -> Self {
        PhaseKing { ell, t, domain }
    }

    /// The value domain.
    pub fn domain(&self) -> &Domain<V> {
        &self.domain
    }

    fn default_value(&self) -> V {
        self.domain.default_value().clone()
    }

    /// Phase number (1-based) of a 1-based round.
    fn phase(ba_round: u64) -> u64 {
        ba_round.div_ceil(2)
    }

    fn is_exchange_round(ba_round: u64) -> bool {
        ba_round % 2 == 1
    }

    /// The king of phase `k` is the process with identifier `k`.
    fn king(phase: u64) -> Id {
        Id::new(u16::try_from(phase).expect("phase fits in u16"))
    }
}

impl<V: Value> SyncBa for PhaseKing<V> {
    type State = PhaseKingState<V>;
    type Msg = PhaseKingMsg<V>;
    type Value = V;

    fn ell(&self) -> usize {
        self.ell
    }

    fn t(&self) -> usize {
        self.t
    }

    fn init(&self, id: Id, input: V) -> PhaseKingState<V> {
        let input = if self.domain.contains(&input) {
            input
        } else {
            self.default_value()
        };
        PhaseKingState {
            id,
            pref: input,
            maj: None,
            decided: None,
        }
    }

    fn message(&self, s: &PhaseKingState<V>, ba_round: u64) -> PhaseKingMsg<V> {
        let phase = Self::phase(ba_round);
        if Self::is_exchange_round(ba_round) {
            PhaseKingMsg::Pref(s.pref.clone())
        } else if s.id == Self::king(phase) {
            let (maj, _) = s.maj.clone().unwrap_or_else(|| (self.default_value(), 0));
            PhaseKingMsg::King(maj)
        } else {
            // Non-kings still send something so every identifier emits one
            // message per round (keeps the transformer's equivocation filter
            // uniform); recipients ignore non-king King messages.
            PhaseKingMsg::Pref(s.pref.clone())
        }
    }

    fn transition(
        &self,
        s: &PhaseKingState<V>,
        ba_round: u64,
        received: &BTreeMap<Id, PhaseKingMsg<V>>,
    ) -> PhaseKingState<V> {
        let mut next = s.clone();
        let phase = Self::phase(ba_round);
        if phase > self.t as u64 + 1 {
            return next;
        }
        if Self::is_exchange_round(ba_round) {
            let mut counts: BTreeMap<V, usize> = BTreeMap::new();
            for msg in received.values() {
                if let PhaseKingMsg::Pref(v) = msg {
                    if self.domain.contains(v) {
                        *counts.entry(v.clone()).or_insert(0) += 1;
                    }
                }
            }
            let best = counts
                .into_iter()
                .max_by(|a, b| a.1.cmp(&b.1).then_with(|| b.0.cmp(&a.0)));
            next.maj = Some(match best {
                Some((v, c)) if 2 * c > self.ell => (v, c),
                Some((_, _)) | None => (self.default_value(), 0),
            });
        } else {
            let king_value = match received.get(&Self::king(phase)) {
                Some(PhaseKingMsg::King(v)) if self.domain.contains(v) => v.clone(),
                _ => self.default_value(),
            };
            let (maj, mult) = next.maj.take().unwrap_or_else(|| (self.default_value(), 0));
            next.pref = if 2 * mult > self.ell + 2 * self.t {
                maj
            } else {
                king_value
            };
            if phase == self.t as u64 + 1 && next.decided.is_none() {
                next.decided = Some(next.pref.clone());
            }
        }
        next
    }

    fn decide(&self, s: &PhaseKingState<V>) -> Option<V> {
        s.decided.clone()
    }

    fn round_bound(&self) -> u64 {
        2 * (self.t as u64 + 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_phase_king(
        ell: usize,
        t: usize,
        inputs: &[bool],
        byz: &[Id],
        mut forge: impl FnMut(Id, u64, Id) -> Option<PhaseKingMsg<bool>>,
    ) -> Vec<Option<bool>> {
        let algo = PhaseKing::new_unchecked(ell, t, Domain::binary());
        let mut states: BTreeMap<Id, PhaseKingState<bool>> = Id::all(ell)
            .filter(|id| !byz.contains(id))
            .map(|id| (id, algo.init(id, inputs[id.index()])))
            .collect();
        for r in 1..=algo.round_bound() {
            let honest: BTreeMap<Id, PhaseKingMsg<bool>> = states
                .iter()
                .map(|(&id, s)| (id, algo.message(s, r)))
                .collect();
            let mut next = BTreeMap::new();
            for (&id, s) in &states {
                let mut inbox = honest.clone();
                for &b in byz {
                    if let Some(m) = forge(b, r, id) {
                        inbox.insert(b, m);
                    }
                }
                next.insert(id, algo.transition(s, r, &inbox));
            }
            states = next;
        }
        Id::all(ell)
            .map(|id| states.get(&id).and_then(|s| algo.decide(s)))
            .collect()
    }

    #[test]
    fn unanimous_inputs_decide_that_value() {
        for v in [false, true] {
            let decisions = run_phase_king(5, 1, &[v; 5], &[], |_, _, _| None);
            for d in decisions {
                assert_eq!(d, Some(v));
            }
        }
    }

    #[test]
    fn mixed_inputs_agree() {
        let decisions =
            run_phase_king(5, 1, &[true, false, true, false, true], &[], |_, _, _| None);
        assert!(decisions[0].is_some());
        assert!(decisions.iter().all(|d| *d == decisions[0]));
    }

    #[test]
    fn byzantine_king_cannot_split_correct_processes() {
        // Byzantine identifier 1 is the first king and lies differently to
        // different recipients; the correct king of phase 2 restores
        // agreement.
        let byz = [Id::new(1)];
        let inputs = [false, true, false, true, false];
        let decisions = run_phase_king(5, 1, &inputs, &byz, |b, r, to| {
            if PhaseKing::<bool>::is_exchange_round(r) {
                Some(PhaseKingMsg::Pref(to.index() % 2 == 0))
            } else if PhaseKing::<bool>::king(PhaseKing::<bool>::phase(r)) == b {
                Some(PhaseKingMsg::King(to.index() % 2 == 0))
            } else {
                None
            }
        });
        let correct: Vec<Option<bool>> = Id::all(5)
            .filter(|id| !byz.contains(id))
            .map(|id| decisions[id.index()])
            .collect();
        assert!(correct[0].is_some());
        assert!(correct.iter().all(|d| *d == correct[0]), "{correct:?}");
    }

    #[test]
    fn byzantine_cannot_break_validity() {
        let byz = [Id::new(5)];
        let decisions = run_phase_king(5, 1, &[true; 5], &byz, |_, r, to| {
            if PhaseKing::<bool>::is_exchange_round(r) {
                Some(PhaseKingMsg::Pref(to.index() % 2 == 0))
            } else {
                Some(PhaseKingMsg::King(false))
            }
        });
        for id in Id::all(5).filter(|id| !byz.contains(id)) {
            assert_eq!(decisions[id.index()], Some(true));
        }
    }

    #[test]
    fn phase_round_mapping() {
        assert_eq!(PhaseKing::<bool>::phase(1), 1);
        assert_eq!(PhaseKing::<bool>::phase(2), 1);
        assert_eq!(PhaseKing::<bool>::phase(3), 2);
        assert!(PhaseKing::<bool>::is_exchange_round(1));
        assert!(!PhaseKing::<bool>::is_exchange_round(2));
        assert_eq!(PhaseKing::<bool>::king(2), Id::new(2));
    }

    #[test]
    #[should_panic(expected = "ell > 4t")]
    fn unsound_parameters_rejected() {
        let _ = PhaseKing::new(4, 1, Domain::binary());
    }

    #[test]
    fn out_of_domain_input_coerced_to_default() {
        let algo = PhaseKing::new_unchecked(5, 1, Domain::new(vec![1u32, 2]));
        let s = algo.init(Id::new(1), 7);
        assert_eq!(*s.pref(), 1);
    }

    #[test]
    fn decision_is_stable() {
        let algo = PhaseKing::new(5, 1, Domain::binary());
        let mut s = algo.init(Id::new(1), true);
        for r in 1..=10 {
            s = algo.transition(&s, r, &BTreeMap::new());
        }
        let d = algo.decide(&s);
        assert!(d.is_some());
        let s2 = algo.transition(&s, 11, &BTreeMap::new());
        assert_eq!(algo.decide(&s2), d);
    }
}

#[cfg(test)]
mod codec_proptests {
    use super::*;
    use homonym_core::codec::{decode_frame, encode_frame};
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        /// `decode(encode(m)) == m` for phase-king wire messages.
        #[test]
        fn phase_king_msg_roundtrips(king in any::<bool>(), v in any::<bool>()) {
            let msg = if king {
                PhaseKingMsg::King(v)
            } else {
                PhaseKingMsg::Pref(v)
            };
            let back: PhaseKingMsg<bool> =
                decode_frame(&encode_frame(&msg)).expect("own frames must decode");
            prop_assert_eq!(back, msg);
        }

        /// `decode(encode(s)) == s` for phase-king states across the
        /// whole `(pref, maj, decided)` shape space.
        #[test]
        fn phase_king_state_roundtrips(
            raw_id in 1u16..=6,
            pref in any::<bool>(),
            maj in any::<bool>(),
            maj_v in any::<bool>(),
            mult in 0usize..7,
            decided in any::<bool>(),
            decision in any::<bool>(),
        ) {
            let state = PhaseKingState {
                id: Id::new(raw_id),
                pref,
                maj: maj.then_some((maj_v, mult)),
                decided: decided.then_some(decision),
            };
            let back: PhaseKingState<bool> =
                decode_frame(&encode_frame(&state)).expect("own frames must decode");
            prop_assert_eq!(back, state);
        }
    }
}
