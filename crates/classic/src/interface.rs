//! The paper's specification of a unique-identifier algorithm `A`, plus an
//! adapter to run one directly as a [`Protocol`].

use std::collections::BTreeMap;

use homonym_core::codec::{decode_frame, encode_frame, DecodeError, WireDecode, WireEncode};
use homonym_core::{Id, Inbox, Message, Protocol, Recipients, Round, Value};

/// A synchronous Byzantine agreement algorithm for `ℓ` processes with
/// unique identifiers — the object the `T(A)` transformer consumes.
///
/// This trait transcribes the paper's specification of `A` (Section 3.2):
///
/// 1. a set of local process states — [`SyncBa::State`];
/// 2. `init(i, v)`, the initial state of process `pᵢ` with input `v` —
///    [`SyncBa::init`];
/// 3. `M(s, r)`, the message broadcast from state `s` in round `r` —
///    [`SyncBa::message`];
/// 4. `δ(s, r, R)`, the transition on receiving the messages `R` —
///    [`SyncBa::transition`]; `R` holds at most one message per identifier
///    (the transformer's running round filters equivocators out first,
///    exactly as Figure 3 lines 12–14 prescribe);
/// 5. `decide(s)`, the decision in state `s`, or `None` — [`SyncBa::decide`].
///
/// Rounds are numbered from 1, as in the paper. Once `decide` returns
/// `Some(v)` it must return `Some(v)` in every reachable successor state.
///
/// The implementing type itself plays the role of the *algorithm
/// description* (`ℓ`, `t`, value domain, defaults); the state is explicit
/// and must be [`Message`] because the transformer sends states over the
/// wire (Figure 3 line 3).
pub trait SyncBa {
    /// Local process state (sent over the wire by the transformer).
    type State: Message;
    /// Broadcast message type.
    type Msg: Message;
    /// Agreement value type.
    type Value: Value;

    /// Number of processes (= number of identifiers) `A` is designed for.
    fn ell(&self) -> usize;

    /// Fault bound `A` tolerates.
    fn t(&self) -> usize;

    /// `init(i, v)`: the initial state of the process with identifier `i`
    /// and input `v`.
    fn init(&self, id: Id, input: Self::Value) -> Self::State;

    /// `M(s, r)`: the message broadcast in round `ba_round` (1-based) from
    /// state `s`.
    fn message(&self, s: &Self::State, ba_round: u64) -> Self::Msg;

    /// `δ(s, r, R)`: the successor of `s` after receiving `received` in
    /// round `ba_round` (at most one message per identifier; identifiers
    /// absent from the map sent nothing usable).
    fn transition(
        &self,
        s: &Self::State,
        ba_round: u64,
        received: &BTreeMap<Id, Self::Msg>,
    ) -> Self::State;

    /// `decide(s)`: the decision in state `s`, if any.
    fn decide(&self, s: &Self::State) -> Option<Self::Value>;

    /// An upper bound on the number of rounds until every correct process
    /// has decided, used by harnesses to choose horizons. (`t + 1` for
    /// [`Eig`](crate::Eig), `2(t + 1)` for [`PhaseKing`](crate::PhaseKing).)
    fn round_bound(&self) -> u64;
}

/// Runs a [`SyncBa`] algorithm directly as a [`Protocol`], for classical
/// systems where `ℓ = n` and every process holds a unique identifier.
///
/// Each engine round `r` (0-based) executes `A`'s round `r + 1`: broadcast
/// `M(s, r + 1)`, then apply `δ`. If an identifier delivers more than one
/// distinct message in a round (impossible for correct processes in the
/// unique-identifier model), the smallest is used.
///
/// # Example
///
/// ```
/// use homonym_classic::{Eig, UniqueRunner};
/// use homonym_core::{Domain, Id};
///
/// let algo = Eig::new(4, 1, Domain::binary());
/// let runner = UniqueRunner::new(algo, Id::new(2), true);
/// ```
#[derive(Clone, Debug)]
pub struct UniqueRunner<A: SyncBa> {
    algo: A,
    id: Id,
    state: A::State,
    decision: Option<A::Value>,
}

impl<A: SyncBa> UniqueRunner<A> {
    /// Creates a runner for the process holding `id` proposing `input`.
    pub fn new(algo: A, id: Id, input: A::Value) -> Self {
        let state = algo.init(id, input);
        UniqueRunner {
            algo,
            id,
            state,
            decision: None,
        }
    }

    /// The current `A`-state (exposed for tests and the transformer's
    /// cross-validation).
    pub fn state(&self) -> &A::State {
        &self.state
    }
}

impl<A: SyncBa> Protocol for UniqueRunner<A>
where
    A::State: WireEncode + WireDecode,
    A::Value: WireEncode + WireDecode,
{
    type Msg = A::Msg;
    type Value = A::Value;

    fn id(&self) -> Id {
        self.id
    }

    fn send(&mut self, round: Round) -> Vec<(Recipients, A::Msg)> {
        vec![(
            Recipients::All,
            self.algo.message(&self.state, round.index() + 1),
        )]
    }

    fn receive(&mut self, round: Round, inbox: &Inbox<A::Msg>) {
        let mut received: BTreeMap<Id, A::Msg> = BTreeMap::new();
        for id in inbox.ids() {
            if let Some((msg, _)) = inbox.from_id(id).next() {
                received.insert(id, msg.clone());
            }
        }
        self.state = self
            .algo
            .transition(&self.state, round.index() + 1, &received);
        if self.decision.is_none() {
            self.decision = self.algo.decide(&self.state);
        }
    }

    fn decision(&self) -> Option<A::Value> {
        self.decision.clone()
    }

    fn snapshot(&self) -> Option<Vec<u8>> {
        Some(encode_frame(&(self.state.clone(), self.decision.clone())))
    }

    fn restore(&mut self, snapshot: &[u8]) -> Result<(), DecodeError> {
        let (state, decision) = decode_frame::<(A::State, Option<A::Value>)>(snapshot)?;
        self.state = state;
        self.decision = decision;
        Ok(())
    }
}
